//! Cycle-attribution profiler for the Rabbit ISS.
//!
//! The interpreter (or block engine) calls [`CycleProfiler::record`] once
//! per retired instruction with the instruction's PC and cycle cost, and
//! [`CycleProfiler::call`]/[`CycleProfiler::ret`] when control transfers
//! push or pop a frame. Attribution is two-level:
//!
//! * **flat** — a fixed `64 Ki`-slot array of per-PC cycle totals, folded
//!   to per-symbol rows through a [`SymbolTable`] built from the
//!   assembler's label table;
//! * **call-stack aware** — each distinct call stack is interned to an id
//!   the first time it appears (O(1) per instruction, O(depth) only at
//!   call/ret), and per-stack cycle totals export as flamegraph
//!   collapsed-stack lines.
//!
//! Everything is integers and total orders: reports are byte-identical
//! across runs of the same workload.

use std::collections::{BTreeMap, HashMap};

use crate::json_escape;

/// Code labels from the assembler, sorted by address; resolves a PC to
/// the nearest label at or below it.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// `(address, name)` sorted ascending by address, then name.
    syms: Vec<(u16, String)>,
}

impl SymbolTable {
    /// Builds a table from `(name, address)` pairs (the assembler's
    /// symbol-map shape). Duplicate addresses keep the lexically first
    /// name so resolution is deterministic.
    #[must_use]
    pub fn from_pairs<'a, I>(pairs: I) -> SymbolTable
    where
        I: IntoIterator<Item = (&'a str, u16)>,
    {
        let mut syms: Vec<(u16, String)> = pairs
            .into_iter()
            .map(|(name, addr)| (addr, name.to_string()))
            .collect();
        syms.sort();
        syms.dedup_by_key(|(addr, _)| *addr);
        SymbolTable { syms }
    }

    /// The nearest label at or below `pc`, if any.
    #[must_use]
    pub fn resolve(&self, pc: u16) -> Option<&str> {
        match self.syms.binary_search_by_key(&pc, |(addr, _)| *addr) {
            Ok(i) => Some(&self.syms[i].1),
            Err(0) => None,
            Err(i) => Some(&self.syms[i - 1].1),
        }
    }

    /// Number of labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

/// Deepest call stack the profiler will intern. Frames past this depth
/// are counted but not materialised, so a runaway call chain (wild
/// execution landing in `rst`-looping garbage, unbounded recursion)
/// costs O(1) per call instead of interning ever-larger stacks.
const MAX_DEPTH: usize = 256;

/// Per-PC and per-call-stack cycle accumulator. See the module docs for
/// the recording contract.
#[derive(Debug, Clone)]
pub struct CycleProfiler {
    /// Cycles retired at each PC.
    pc_cycles: Box<[u64]>,
    /// Interned call stacks: each is the chain of frame entry PCs,
    /// root first.
    stacks: Vec<Vec<u16>>,
    /// Stack contents -> interned id.
    intern: HashMap<Vec<u16>, usize>,
    /// Cycles retired while each interned stack was current.
    stack_cycles: Vec<u64>,
    /// Currently active stack id.
    cur: usize,
    /// Frames notionally pushed past [`MAX_DEPTH`]; rets unwind these
    /// before touching the interned stack.
    overflow: u64,
    /// Total cycles recorded.
    total: u64,
}

impl CycleProfiler {
    /// A profiler whose root frame starts at `entry` (the initial PC).
    #[must_use]
    pub fn new(entry: u16) -> CycleProfiler {
        let root = vec![entry];
        let mut intern = HashMap::new();
        intern.insert(root.clone(), 0);
        CycleProfiler {
            pc_cycles: vec![0u64; 0x1_0000].into_boxed_slice(),
            stacks: vec![root],
            intern,
            stack_cycles: vec![0],
            cur: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Attributes `cycles` to the instruction at `pc` and to the current
    /// call stack. O(1).
    #[inline]
    pub fn record(&mut self, pc: u16, cycles: u64) {
        self.pc_cycles[pc as usize] += cycles;
        self.stack_cycles[self.cur] += cycles;
        self.total += cycles;
    }

    /// Pushes a frame entered at `target` (call, rst, or interrupt
    /// dispatch). Past [`MAX_DEPTH`] the frame is counted but not
    /// interned; cycles keep billing to the deepest interned stack.
    pub fn call(&mut self, target: u16) {
        if self.overflow > 0 || self.stacks[self.cur].len() >= MAX_DEPTH {
            self.overflow += 1;
            return;
        }
        let mut stack = self.stacks[self.cur].clone();
        stack.push(target);
        self.cur = self.intern_stack(stack);
    }

    /// Pops the current frame (ret/reti). A return past the root frame is
    /// ignored — the workload returned out of the code the profiler was
    /// attached under.
    pub fn ret(&mut self) {
        if self.overflow > 0 {
            self.overflow -= 1;
            return;
        }
        if self.stacks[self.cur].len() <= 1 {
            return;
        }
        let mut stack = self.stacks[self.cur].clone();
        stack.pop();
        self.cur = self.intern_stack(stack);
    }

    fn intern_stack(&mut self, stack: Vec<u16>) -> usize {
        if let Some(&id) = self.intern.get(&stack) {
            return id;
        }
        let id = self.stacks.len();
        self.stacks.push(stack.clone());
        self.intern.insert(stack, id);
        self.stack_cycles.push(0);
        id
    }

    /// Total cycles recorded so far.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Current call-stack depth (including non-interned overflow frames).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stacks[self.cur].len() + self.overflow as usize
    }

    /// Folds the accumulated cycles through `symbols` into a report.
    #[must_use]
    pub fn report(&self, symbols: &SymbolTable) -> ProfileReport {
        let mut by_symbol: BTreeMap<String, u64> = BTreeMap::new();
        let mut attributed = 0u64;
        let mut unattributed_pcs: Vec<(u16, u64)> = Vec::new();
        for (pc, &cycles) in self.pc_cycles.iter().enumerate() {
            if cycles == 0 {
                continue;
            }
            match symbols.resolve(pc as u16) {
                Some(name) => {
                    *by_symbol.entry(name.to_string()).or_insert(0) += cycles;
                    attributed += cycles;
                }
                None => unattributed_pcs.push((pc as u16, cycles)),
            }
        }
        let mut rows: Vec<SymbolCycles> = by_symbol
            .into_iter()
            .map(|(symbol, cycles)| SymbolCycles { symbol, cycles })
            .collect();
        rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.symbol.cmp(&b.symbol)));

        let mut stacks: Vec<(String, u64)> = self
            .stacks
            .iter()
            .zip(&self.stack_cycles)
            .filter(|(_, &c)| c > 0)
            .map(|(frames, &c)| {
                let names: Vec<String> = frames
                    .iter()
                    .map(|&pc| match symbols.resolve(pc) {
                        Some(name) => name.to_string(),
                        None => format!("0x{pc:04x}"),
                    })
                    .collect();
                (names.join(";"), c)
            })
            .collect();
        // Same stack string can appear under two frame-PC chains (two call
        // sites into one symbol); fold them before sorting.
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (line, c) in stacks.drain(..) {
            *folded.entry(line).or_insert(0) += c;
        }

        ProfileReport {
            rows,
            stacks: folded.into_iter().collect(),
            total: self.total,
            attributed,
            unattributed_pcs,
        }
    }
}

/// One per-symbol row of a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolCycles {
    /// Symbol name from the assembler label table.
    pub symbol: String,
    /// Cycles attributed to PCs under this symbol.
    pub cycles: u64,
}

/// A folded profile: per-symbol rows, collapsed call stacks, and the
/// attribution tally. All exports are deterministic.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Per-symbol cycle totals, descending by cycles (name breaks ties).
    pub rows: Vec<SymbolCycles>,
    /// Collapsed stacks as `frame;frame;frame` lines with cycle totals,
    /// sorted by line.
    pub stacks: Vec<(String, u64)>,
    /// Total cycles recorded.
    pub total: u64,
    /// Cycles that resolved to a named symbol.
    pub attributed: u64,
    /// PCs (with cycle counts) that resolved to no symbol.
    pub unattributed_pcs: Vec<(u16, u64)>,
}

impl ProfileReport {
    /// Fraction of recorded cycles attributed to named symbols
    /// (1.0 when nothing was recorded).
    #[must_use]
    pub fn attributed_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.attributed as f64 / self.total as f64
        }
    }

    /// A human-readable per-symbol table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>14} {:>7}\n",
            "symbol", "cycles", "share"
        ));
        for row in &self.rows {
            let pct = if self.total == 0 {
                0.0
            } else {
                100.0 * row.cycles as f64 / self.total as f64
            };
            out.push_str(&format!(
                "{:<24} {:>14} {:>6.2}%\n",
                row.symbol, row.cycles, pct
            ));
        }
        let unattrib = self.total - self.attributed;
        if unattrib > 0 {
            let pct = 100.0 * unattrib as f64 / self.total as f64;
            out.push_str(&format!(
                "{:<24} {:>14} {:>6.2}%\n",
                "(unattributed)", unattrib, pct
            ));
        }
        out.push_str(&format!("{:<24} {:>14} 100.00%\n", "total", self.total));
        out
    }

    /// Flamegraph collapsed-stack lines (`a;b;c 1234`), one per distinct
    /// stack, sorted — feed straight into `flamegraph.pl`.
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (line, cycles) in &self.stacks {
            out.push_str(&format!("{line} {cycles}\n"));
        }
        out
    }

    /// Deterministic JSON export: totals, per-symbol rows, and collapsed
    /// stacks. Integer-only values.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"symbol\":\"{}\",\"cycles\":{}}}",
                    json_escape(&r.symbol),
                    r.cycles
                )
            })
            .collect();
        let stacks: Vec<String> = self
            .stacks
            .iter()
            .map(|(line, c)| format!("{{\"stack\":\"{}\",\"cycles\":{}}}", json_escape(line), c))
            .collect();
        format!(
            "{{\"total\":{},\"attributed\":{},\"symbols\":[{}],\"stacks\":[{}]}}",
            self.total,
            self.attributed,
            rows.join(","),
            stacks.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::from_pairs([("_main", 0x4000u16), ("_aes", 0x4100), ("__div16", 0x4800)])
    }

    #[test]
    fn resolve_picks_nearest_label_at_or_below() {
        let t = table();
        assert_eq!(t.resolve(0x4000), Some("_main"));
        assert_eq!(t.resolve(0x40ff), Some("_main"));
        assert_eq!(t.resolve(0x4100), Some("_aes"));
        assert_eq!(t.resolve(0x5000), Some("__div16"));
        assert_eq!(t.resolve(0x3fff), None);
    }

    #[test]
    fn flat_attribution_folds_to_symbols() {
        let mut p = CycleProfiler::new(0x4000);
        p.record(0x4002, 10);
        p.record(0x4105, 30);
        p.record(0x4105, 5);
        p.record(0x0100, 7); // below every label
        let r = p.report(&table());
        assert_eq!(r.total, 52);
        assert_eq!(r.attributed, 45);
        assert_eq!(r.rows[0].symbol, "_aes");
        assert_eq!(r.rows[0].cycles, 35);
        assert_eq!(r.unattributed_pcs, vec![(0x0100, 7)]);
        assert!(r.attributed_fraction() < 0.95);
    }

    #[test]
    fn call_stacks_collapse_with_symbol_names() {
        let mut p = CycleProfiler::new(0x4000);
        p.record(0x4000, 2);
        p.call(0x4100);
        p.record(0x4100, 10);
        p.call(0x4800);
        p.record(0x4800, 4);
        p.ret();
        p.record(0x4101, 1);
        p.ret();
        p.record(0x4003, 3);
        let r = p.report(&table());
        let collapsed = r.collapsed();
        assert!(collapsed.contains("_main 5\n"), "{collapsed}");
        assert!(collapsed.contains("_main;_aes 11\n"), "{collapsed}");
        assert!(collapsed.contains("_main;_aes;__div16 4\n"), "{collapsed}");
    }

    #[test]
    fn ret_past_root_is_ignored() {
        let mut p = CycleProfiler::new(0x4000);
        p.ret();
        p.ret();
        assert_eq!(p.depth(), 1);
        p.record(0x4000, 1);
        assert_eq!(p.total_cycles(), 1);
    }

    #[test]
    fn runaway_call_chains_stay_bounded() {
        // A pathological workload (e.g. wild execution looping through
        // `rst`) performs millions of calls that never return. Memory and
        // per-call cost must stay O(1) past MAX_DEPTH.
        let mut p = CycleProfiler::new(0x0000);
        for _ in 0..1_000_000 {
            p.call(0x0038);
            p.record(0x0038, 10);
        }
        assert!(p.stacks.len() <= MAX_DEPTH + 1, "interning is capped");
        assert_eq!(p.depth(), 1_000_001);
        // Unwinding balances: overflow frames pop before interned ones.
        for _ in 0..1_000_000 {
            p.ret();
        }
        assert_eq!(p.depth(), 1);
        assert_eq!(p.total_cycles(), 10_000_000);
    }

    #[test]
    fn reports_are_deterministic() {
        let run = || {
            let mut p = CycleProfiler::new(0x4000);
            for i in 0..200u16 {
                p.record(0x4000 + (i % 64), u64::from(i) + 1);
                if i % 17 == 0 {
                    p.call(0x4100 + (i % 3) * 0x10);
                    p.record(0x4100, 9);
                    p.ret();
                }
            }
            p.report(&table()).to_json()
        };
        assert_eq!(run(), run());
    }
}
