//! Fixed-bucket log-linear histograms with bounded-error quantiles.
//!
//! The bucket layout is the classic HDR shape: values `0..32` get one
//! bucket each (exact), and every power-of-two octave above that is split
//! into 32 linear sub-buckets. Quantiles therefore carry a relative error
//! of at most 1/32 (~3.1%) plus one unit, while the whole `u64` range
//! fits in a fixed [`BUCKETS`]-slot array — no allocation on record, no
//! data-dependent layout, byte-identical dumps for identical inputs.
//!
//! Merging two histograms adds bucket counts; merge is associative and
//! commutative (pinned by property tests), so per-shard histograms can be
//! combined in any order without changing the dump.

use std::sync::{Arc, Mutex};

/// Linear sub-buckets per octave. Bounds quantile relative error at
/// `1/SUB_BUCKETS`.
const SUB_BUCKETS: u64 = 32;

/// Total bucket count: 32 exact unit buckets plus 32 sub-buckets for each
/// of the 59 octaves `2^5..2^64`.
pub const BUCKETS: usize = 32 + 59 * 32;

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize; // 5..=63
        let sub = ((v >> (e - 5)) & (SUB_BUCKETS - 1)) as usize;
        32 + (e - 5) * 32 + sub
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 32 {
        (i as u64, i as u64)
    } else {
        let octave = (i - 32) / 32;
        let sub = ((i - 32) % 32) as u64;
        let lo = (32 + sub) << octave;
        let width = 1u64 << octave;
        (lo, lo + (width - 1))
    }
}

/// The plain histogram data: a fixed bucket array plus count/sum/min/max.
/// This is the mergeable, snapshot-able value type; [`Histogram`] is the
/// shared recording handle around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramData {
    fn default() -> HistogramData {
        HistogramData::new()
    }
}

impl HistogramData {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> HistogramData {
        HistogramData {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every recorded value of `other` into `self`. Associative and
    /// commutative: merging a set of histograms in any order yields the
    /// same result.
    pub fn merge(&mut self, other: &HistogramData) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), nearest-rank over buckets,
    /// reported as the upper bound of the rank's bucket clamped to the
    /// observed maximum. Guaranteed `>=` the exact quantile of the
    /// recorded multiset and within `exact/32 + 1` of it; 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending — the
    /// deterministic export shape.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

/// A cloneable recording handle over a shared [`HistogramData`]; what
/// [`crate::Registry::histogram`] hands out.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<Mutex<HistogramData>>,
}

impl Histogram {
    /// A standalone histogram (not registered anywhere).
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.inner.lock().expect("histogram lock").record(v);
    }

    /// A snapshot of the current data.
    #[must_use]
    pub fn data(&self) -> HistogramData {
        self.inner.lock().expect("histogram lock").clone()
    }

    /// Shortcut for `data().quantile(q)`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.lock().expect("histogram lock").quantile(q)
    }

    /// Shortcut for `data().count()`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.lock().expect("histogram lock").count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = HistogramData::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v));
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Every boundary value maps into a bucket whose range contains it,
        // and consecutive buckets tile without gaps.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap after bucket {i}");
        }
        for v in [0, 1, 31, 32, 33, 63, 64, 1000, u32::MAX as u64, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_bounds_error() {
        let mut h = HistogramData::new();
        let values: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 5).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx - exact <= exact / 32 + 1,
                "q={q}: {approx} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = HistogramData::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
