//! The deterministic metrics core: counters, gauges and histograms keyed
//! by name + label set, collected in a [`Registry`] and exported through
//! [`Snapshot`] as text or JSON.
//!
//! Determinism contract: a snapshot's byte representation depends only on
//! the sequence of metric operations performed — never on wall-clock
//! time, hash iteration order, or pointer values. Keys live in a
//! `BTreeMap` so every dump walks the same total order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramData};
use crate::json_escape;

/// A metric identity: static name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dotted metric name, e.g. `net.tcp.retransmits`.
    pub name: String,
    /// Label pairs, sorted by key (the constructor sorts).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels so equal label sets always
    /// compare (and dump) identically.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell, so
/// a registry and any number of holders observe the same value.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter (not registered anywhere).
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

// Value comparisons, so telemetry-backed counters stay source-compatible
// with the plain `u64` fields they replaced (`stats.dropped > 0`).
impl PartialEq for Counter {
    fn eq(&self, other: &Counter) -> bool {
        self.get() == other.get()
    }
}

impl PartialEq<u64> for Counter {
    fn eq(&self, other: &u64) -> bool {
        self.get() == *other
    }
}

impl PartialOrd<u64> for Counter {
    fn partial_cmp(&self, other: &u64) -> Option<std::cmp::Ordering> {
        self.get().partial_cmp(other)
    }
}

/// A gauge handle: a signed value that can move both ways.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A standalone gauge (not registered anywhere).
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A shared collection of metrics. Cloning shares the underlying map, so
/// every layer of the stack can register into one registry and a single
/// snapshot covers them all.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<MetricKey, Metric>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter for `name` + `labels`.
    ///
    /// # Panics
    ///
    /// Panics when the key is already registered as a different metric
    /// type — that is a naming bug, not a runtime condition.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Registers `counter`'s cell under an additional name — an alias:
    /// both keys observe the same underlying value, so a metric can be
    /// renamed (e.g. namespaced per board) while the old name keeps
    /// reporting. Idempotent; if the alias key already exists as a
    /// counter it is left untouched and returned.
    ///
    /// # Panics
    ///
    /// Panics when the key is already registered as a different metric
    /// type — that is a naming bug, not a runtime condition.
    pub fn alias_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(counter.clone()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Gets or creates the gauge for `name` + `labels`.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().expect("registry lock");
        match map.entry(key).or_insert_with(|| Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Gets or creates the histogram for `name` + `labels`.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().expect("registry lock");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Captures every registered metric's current value, in key order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("registry lock");
        Snapshot {
            entries: map
                .iter()
                .map(|(k, m)| {
                    let value = match m {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapshotValue::Histogram(h.data()),
                    };
                    (k.clone(), value)
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.inner.lock().expect("registry lock");
        f.debug_struct("Registry").field("metrics", &map.len()).finish()
    }
}

/// One metric's captured value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram's full data.
    Histogram(HistogramData),
}

/// A point-in-time copy of a [`Registry`], ordered by [`MetricKey`].
/// Exports are byte-identical for identical metric contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<(MetricKey, SnapshotValue)>,
}

impl Snapshot {
    /// All entries in key order.
    #[must_use]
    pub fn entries(&self) -> &[(MetricKey, SnapshotValue)] {
        &self.entries
    }

    /// Looks up one metric by name + labels.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotValue> {
        let key = MetricKey::new(name, labels);
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// A counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(SnapshotValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A histogram's data, when present.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramData> {
        match self.get(name, labels) {
            Some(SnapshotValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot as text, one metric per line, in key order.
    /// Histograms expand to `_count`/`_sum`/`_min`/`_max`/`_p50`/`_p90`/
    /// `_p99` lines.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            let k = key.render();
            match value {
                SnapshotValue::Counter(v) => out.push_str(&format!("{k} {v}\n")),
                SnapshotValue::Gauge(v) => out.push_str(&format!("{k} {v}\n")),
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!("{k}_count {}\n", h.count()));
                    out.push_str(&format!("{k}_sum {}\n", h.sum()));
                    out.push_str(&format!("{k}_min {}\n", h.min()));
                    out.push_str(&format!("{k}_max {}\n", h.max()));
                    out.push_str(&format!("{k}_p50 {}\n", h.quantile(0.50)));
                    out.push_str(&format!("{k}_p90 {}\n", h.quantile(0.90)));
                    out.push_str(&format!("{k}_p99 {}\n", h.quantile(0.99)));
                }
            }
        }
        out
    }

    /// Renders the snapshot as JSON: an array of metric objects in key
    /// order, integers only, no whitespace variance — byte-identical for
    /// identical contents.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut items = Vec::with_capacity(self.entries.len());
        for (key, value) in &self.entries {
            let labels: Vec<String> = key
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                .collect();
            let head = format!(
                "{{\"name\":\"{}\",\"labels\":{{{}}}",
                json_escape(&key.name),
                labels.join(",")
            );
            let body = match value {
                SnapshotValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
                SnapshotValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
                SnapshotValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .iter()
                        .map(|(lo, hi, c)| format!("[{lo},{hi},{c}]"))
                        .collect();
                    format!(
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                        buckets.join(",")
                    )
                }
            };
            items.push(format!("{head},{body}}}"));
        }
        format!("[{}]", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones() {
        let r = Registry::new();
        let a = r.counter("x", &[]);
        let b = r.counter("x", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("x", &[]), 3);
    }

    #[test]
    fn labels_distinguish_metrics_and_sort() {
        let r = Registry::new();
        r.counter("m", &[("b", "2"), ("a", "1")]).inc();
        r.counter("m", &[("a", "1"), ("b", "2")]).inc();
        r.counter("m", &[("a", "9")]).add(5);
        let s = r.snapshot();
        assert_eq!(s.counter("m", &[("b", "2"), ("a", "1")]), 2);
        assert_eq!(s.counter("m", &[("a", "9")]), 5);
    }

    #[test]
    fn snapshot_dumps_are_deterministic() {
        let build = || {
            let r = Registry::new();
            r.counter("z.last", &[]).add(9);
            r.counter("a.first", &[("k", "v")]).add(1);
            r.gauge("g.mid", &[]).set(-4);
            let h = r.histogram("h.lat", &[("unit", "us")]);
            for v in [3u64, 77, 3000, 12] {
                h.record(v);
            }
            r.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.to_json(), b.to_json());
        // Key order, not insertion order.
        let text = a.to_text();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("a.first"), "got {first}");
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_conflicts_panic() {
        let r = Registry::new();
        let _ = r.counter("dual", &[]);
        let _ = r.gauge("dual", &[]);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let r = Registry::new();
        r.counter("c", &[("quote", "a\"b")]).inc();
        let json = r.snapshot().to_json();
        assert!(json.contains("\\\""), "escapes quotes: {json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
