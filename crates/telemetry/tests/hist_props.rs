//! Property tests pinning the histogram's two contracts: quantiles stay
//! within the documented error bound of the exact quantile, and merge is
//! associative (so per-shard histograms combine in any order).

use proptest::prelude::*;
use telemetry::HistogramData;

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn quantiles_stay_within_error_bound(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        qx in 0usize..=100,
    ) {
        let q = qx as f64 / 100.0;
        let mut h = HistogramData::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = h.quantile(q);
        prop_assert!(approx >= exact, "approx {} below exact {}", approx, exact);
        prop_assert!(
            approx - exact <= exact / 32 + 1,
            "approx {} too far above exact {} (bound {})",
            approx, exact, exact / 32 + 1
        );
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..u64::MAX / 4, 0..50),
        b in proptest::collection::vec(0u64..u64::MAX / 4, 0..50),
        c in proptest::collection::vec(0u64..u64::MAX / 4, 0..50),
    ) {
        let build = |vals: &[u64]| {
            let mut h = HistogramData::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // (a + b) + c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // a + (b + c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // c + b + a (commutativity)
        let mut rev = hc.clone();
        rev.merge(&hb);
        rev.merge(&ha);
        prop_assert_eq!(&left, &rev);

        // Merge result matches recording everything into one histogram.
        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &build(&all));
    }
}
