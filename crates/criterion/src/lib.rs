//! A minimal, dependency-free stand-in for the subset of `criterion` used
//! by this workspace's benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a wall-clock bench harness with the same call shape:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each sample times one batch of iterations; the report prints
//! the median and min/max per-iteration time to stdout (no statistics,
//! plots, or baselines).

use std::time::{Duration, Instant};

/// Re-export for convenience; the real crate has its own `black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            name,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    /// Sets the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line report.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure under test; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    requested_samples: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up call, also used to pick a batch size aiming
        // at ~50 ms per sample (clamped to [1, 1024] iterations).
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_sample = Duration::from_millis(50);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1024) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.requested_samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        requested_samples: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id}: no samples");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "  {id}: median {} [{} .. {}] ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        per_iter.len(),
        b.iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
