//! Deterministic fault scheduling for fleet runs: link flaps, board
//! wedges and corrupted-frame storms, scripted in virtual time.
//!
//! A [`FaultPlan`] is a list of (virtual-µs, event) pairs built with the
//! combinators below and handed to the fleet driver via
//! [`crate::FleetSpec::faults`]. The driver applies due events at epoch
//! boundaries — after the world has reached the barrier, before the
//! balancer pumps — so the application point is a pure function of
//! virtual time: identical on both CPU engines and under any per-epoch
//! board visit order, which is exactly what the differential fault
//! proptest pins.
//!
//! Three fault shapes:
//!
//! - **Link flap** ([`FaultPlan::flap`]): a board's balancer link
//!   drops packets at `rate` for a window, then restores. TCP
//!   retransmission rides it out; sessions finish late but intact.
//! - **Board wedge** ([`FaultPlan::wedge`],
//!   [`FaultPlan::wedge_resurrect`]): the fleet stops advancing the
//!   board's epochs *and* the board's balancer link goes black. The
//!   link kill is not an extra: `netsim`'s TCP stack lives host-side,
//!   so a frozen board's listener would still answer SYNs — only a dead
//!   wire makes the balancer's 5 ms connect timeout (and, for sessions
//!   already established, the stall timeout) carry the load.
//! - **Corruption storm** ([`FaultPlan::storm`]): in-flight TCP
//!   payloads on the board's balancer link get byte flips per a
//!   [`Corruption`] spec. The damage evades TCP (frames still ACK) and
//!   surfaces at the application layer — the issl record MAC — which
//!   must answer with its deterministic close alert.

use netsim::Corruption;

/// One scripted fault, addressed to a board's balancer link or to the
/// board itself.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Set the board's balancer-link drop rate (a flap onset).
    SetDropRate {
        /// Board index.
        board: usize,
        /// New drop probability.
        rate: f64,
    },
    /// Restore the board's balancer-link drop rate to its spec-time
    /// base value (flap end; 1.0 again for `dead_links` boards).
    RestoreDropRate {
        /// Board index.
        board: usize,
    },
    /// Freeze the board: its epochs stop advancing and its balancer
    /// link goes black until a [`FaultEvent::Resurrect`].
    Wedge {
        /// Board index.
        board: usize,
    },
    /// Unfreeze a wedged board and restore its link. Lost time is lost:
    /// the board resumes from its frozen cycle count, it does not
    /// replay the missed epochs.
    Resurrect {
        /// Board index.
        board: usize,
    },
    /// Arm frame corruption on the board's balancer link.
    StormStart {
        /// Board index.
        board: usize,
        /// What to corrupt, and how.
        spec: Corruption,
    },
    /// Disarm frame corruption on the board's balancer link.
    StormEnd {
        /// Board index.
        board: usize,
    },
}

/// A fault event bound to its virtual due time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// Virtual µs at (or after) which the event applies.
    pub at_us: u64,
    /// What happens.
    pub event: FaultEvent,
}

/// A deterministic virtual-time script of fault events.
///
/// Events with equal due times apply in insertion order. The same plan
/// against the same spec replays byte-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (no faults — the driver's default).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedules a raw event at `at_us`.
    #[must_use]
    pub fn at(mut self, at_us: u64, event: FaultEvent) -> FaultPlan {
        self.events.push(ScheduledFault { at_us, event });
        self
    }

    /// A transient link flap: board `board`'s balancer link drops
    /// packets with probability `rate` over `[from_us, to_us)`, then
    /// restores to its base rate.
    #[must_use]
    pub fn flap(self, board: usize, from_us: u64, to_us: u64, rate: f64) -> FaultPlan {
        assert!(from_us < to_us, "flap window is non-empty");
        self.at(from_us, FaultEvent::SetDropRate { board, rate })
            .at(to_us, FaultEvent::RestoreDropRate { board })
    }

    /// Wedges board `board` at `at_us`, permanently.
    #[must_use]
    pub fn wedge(self, board: usize, at_us: u64) -> FaultPlan {
        self.at(at_us, FaultEvent::Wedge { board })
    }

    /// Wedges board `board` at `at_us` and resurrects it at `back_us`.
    #[must_use]
    pub fn wedge_resurrect(self, board: usize, at_us: u64, back_us: u64) -> FaultPlan {
        assert!(at_us < back_us, "resurrection follows the wedge");
        self.at(at_us, FaultEvent::Wedge { board })
            .at(back_us, FaultEvent::Resurrect { board })
    }

    /// A corruption storm on board `board`'s balancer link over
    /// `[from_us, to_us)`.
    #[must_use]
    pub fn storm(self, board: usize, from_us: u64, to_us: u64, spec: Corruption) -> FaultPlan {
        assert!(from_us < to_us, "storm window is non-empty");
        self.at(from_us, FaultEvent::StormStart { board, spec })
            .at(to_us, FaultEvent::StormEnd { board })
    }

    /// The events in application order: stable-sorted by due time, so
    /// same-time events keep insertion order.
    #[must_use]
    pub fn compiled(&self) -> Vec<ScheduledFault> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at_us);
        evs
    }
}

/// One plan event as the driver actually applied it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFault {
    /// The event's scheduled due time.
    pub at_us: u64,
    /// The virtual time the driver applied it (the first epoch boundary
    /// at or after `at_us`).
    pub applied_us: u64,
    /// Human-readable description (`wedge board1`, …).
    pub what: String,
}

/// The fault side of a fleet run's result: what was injected, what it
/// cost, and the frozen-telemetry evidence for wedges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Every plan event, in application order, with its actual
    /// application time.
    pub applied: Vec<AppliedFault>,
    /// Final `net.packets.corrupted` count — frames the storms damaged.
    pub corrupted_frames: u64,
    /// The balancer's failover-latency book: virtual µs each failed
    /// upstream connect waited before the balancer moved on.
    pub failover_latencies_us: Vec<u64>,
    /// For each `Wedge` event: the board's `board<i>.net.board.*`
    /// telemetry lines captured at wedge time. A wedged board's
    /// counters must not move, so these lines reappear verbatim in the
    /// final snapshot (unless the board was resurrected).
    pub wedge_snapshots: Vec<(usize, String)>,
}

impl FaultReport {
    /// Number of fault events injected.
    #[must_use]
    pub fn injected(&self) -> usize {
        self.applied.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_compiles_in_time_order_with_stable_ties() {
        let plan = FaultPlan::new()
            .flap(1, 500, 900, 0.3)
            .wedge_resurrect(0, 200, 700)
            .storm(2, 200, 650, Corruption::mac_storm(5));
        let evs = plan.compiled();
        let times: Vec<u64> = evs.iter().map(|e| e.at_us).collect();
        assert_eq!(times, vec![200, 200, 500, 650, 700, 900]);
        // Equal due times keep insertion order: the wedge was added
        // before the storm start.
        assert!(matches!(evs[0].event, FaultEvent::Wedge { board: 0 }));
        assert!(matches!(evs[1].event, FaultEvent::StormStart { board: 2, .. }));
    }

    #[test]
    #[should_panic(expected = "flap window is non-empty")]
    fn empty_flap_window_is_rejected() {
        let _ = FaultPlan::new().flap(0, 100, 100, 0.5);
    }
}
