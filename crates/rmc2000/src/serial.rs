//! Serial port A of the RMC2000 — the debugging channel of the paper's
//! §5.1: "We used the serial port on the RMC2000 board for debugging. We
//! configured the serial interface to interrupt the processor when a
//! character arrived."

use std::any::Any;
use std::collections::VecDeque;

use rabbit::io::ports;
use rabbit::{Device, Interrupt, PortRange};

/// Logical address of serial port A's interrupt service routine vector.
pub const SERIAL_A_VECTOR: u16 = 0x00E0;

/// The serial port peripheral.
#[derive(Debug, Default)]
pub struct SerialPort {
    rx: VecDeque<u8>,
    tx: Vec<u8>,
    /// Receive interrupt priority (`SACR` bits 0-1); 0 disables the
    /// interrupt. Writing 1 gives the historical priority-1 behaviour;
    /// 2 or 3 let the console preempt priority-1 sources such as the
    /// NIC — the paper's debugging channel staying responsive under
    /// network load.
    pub rx_priority: u8,
    irq_pending: bool,
    /// Characters dropped because the receive FIFO overflowed.
    pub overruns: u64,
    /// Cycles one byte spends in the transmit shifter; 0 (the default)
    /// transmits instantaneously, the historical behaviour.
    shift_cycles: u64,
    /// Bytes written to `SADR` still waiting to clear the shifter (front
    /// byte is the one shifting).
    shifting: VecDeque<u8>,
    /// Cycles left before the front of `shifting` completes. Strictly
    /// positive whenever `shifting` is non-empty.
    head_remaining: u64,
}

/// Depth of the receive FIFO.
const RX_FIFO: usize = 64;

impl SerialPort {
    /// Creates an idle port.
    pub fn new() -> SerialPort {
        SerialPort::default()
    }

    /// Host side: injects a received character (as if it arrived on the
    /// wire). Raises the interrupt when enabled.
    pub fn inject(&mut self, byte: u8) {
        if self.rx.len() >= RX_FIFO {
            self.overruns += 1;
            return;
        }
        self.rx.push_back(byte);
        if self.rx_priority != 0 {
            self.irq_pending = true;
        }
    }

    /// Enables the transmit-shifter timing model: each byte written to
    /// `SADR` takes `cycles_per_byte` cycles to clear the shifter before
    /// it appears in [`SerialPort::transmitted`] and `SASR` reports the
    /// transmitter idle again. 0 restores instantaneous transmission.
    /// Completions are computed arithmetically in [`Device::tick`], so
    /// batched time delivery is exact.
    pub fn set_tx_shift_cycles(&mut self, cycles_per_byte: u64) {
        self.shift_cycles = cycles_per_byte;
    }

    /// Whether the transmit shifter is empty (SASR bit 2).
    pub fn tx_idle(&self) -> bool {
        self.shifting.is_empty()
    }

    /// Host side: everything the firmware transmitted so far.
    pub fn transmitted(&self) -> &[u8] {
        &self.tx
    }

    /// Host side: clears the transmit capture.
    pub fn clear_transmitted(&mut self) {
        self.tx.clear();
    }

    /// CPU side: reads a port register.
    pub fn read(&mut self, port: u16) -> Option<u8> {
        match port {
            ports::SADR => {
                let b = self.rx.pop_front().unwrap_or(0);
                if self.rx.is_empty() {
                    self.irq_pending = false;
                }
                Some(b)
            }
            ports::SASR => {
                // bit 7: receive data ready; bit 2: transmit idle (always,
                // unless the shifter model is on and a byte is in flight).
                let mut st = 0;
                if self.shifting.is_empty() {
                    st |= 0x04;
                }
                if !self.rx.is_empty() {
                    st |= 0x80;
                }
                Some(st)
            }
            ports::SACR => Some(self.rx_priority),
            _ => None,
        }
    }

    /// CPU side: writes a port register.
    pub fn write(&mut self, port: u16, value: u8) -> bool {
        match port {
            ports::SADR => {
                if self.shift_cycles == 0 {
                    self.tx.push(value);
                } else {
                    if self.shifting.is_empty() {
                        self.head_remaining = self.shift_cycles;
                    }
                    self.shifting.push_back(value);
                }
                true
            }
            ports::SACR => {
                self.rx_priority = value & 3;
                if self.rx_priority == 0 {
                    self.irq_pending = false;
                } else if !self.rx.is_empty() {
                    self.irq_pending = true;
                }
                true
            }
            _ => false,
        }
    }

    /// Pending interrupt request, if any, at the configured priority.
    pub fn pending(&self) -> Option<Interrupt> {
        self.irq_pending.then_some(Interrupt {
            priority: self.rx_priority,
            vector: SERIAL_A_VECTOR,
        })
    }

    /// Acknowledge (the ISR will drain the data register).
    pub fn acknowledge(&mut self) {
        self.irq_pending = false;
    }
}

impl Device for SerialPort {
    fn name(&self) -> &'static str {
        "serial-a"
    }

    fn claims(&self) -> Vec<PortRange> {
        // SADR..SACR covers the data, status, and control registers.
        vec![PortRange::internal(ports::SADR, ports::SACR)]
    }

    fn read(&mut self, port: u16, _external: bool) -> u8 {
        self.read(port).unwrap_or(0xFF)
    }

    fn write(&mut self, port: u16, value: u8, _external: bool) {
        self.write(port, value);
    }

    fn tick(&mut self, mut cycles: u64) {
        // Complete whole shifts arithmetically — time only accrues while
        // a byte is actually shifting, so the tick stays additive however
        // it is chunked.
        while let Some(&byte) = self.shifting.front() {
            if self.head_remaining > cycles {
                self.head_remaining -= cycles;
                return;
            }
            cycles -= self.head_remaining;
            self.shifting.pop_front();
            self.tx.push(byte);
            self.head_remaining = self.shift_cycles;
        }
    }

    fn next_deadline(&self) -> Option<u64> {
        // Shift completion moves a byte into the transmit capture and
        // flips SASR's idle bit — the port's only autonomous event (the
        // rx side only changes on host injection or CPU access).
        (!self.shifting.is_empty()).then_some(self.head_remaining)
    }

    fn pending(&self) -> Option<Interrupt> {
        SerialPort::pending(self)
    }

    fn acknowledge(&mut self, _vector: u16) {
        SerialPort::acknowledge(self);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_read_round_trip() {
        let mut sp = SerialPort::new();
        sp.inject(b'X');
        assert_eq!(sp.read(ports::SASR).unwrap() & 0x80, 0x80);
        assert_eq!(sp.read(ports::SADR).unwrap(), b'X');
        assert_eq!(sp.read(ports::SASR).unwrap() & 0x80, 0);
    }

    #[test]
    fn interrupt_only_when_enabled() {
        let mut sp = SerialPort::new();
        sp.inject(1);
        assert!(sp.pending().is_none());
        sp.write(ports::SACR, 1);
        assert!(sp.pending().is_some(), "enable with data pending raises");
        sp.read(ports::SADR);
        assert!(sp.pending().is_none(), "draining clears");
    }

    #[test]
    fn sacr_sets_interrupt_priority() {
        let mut sp = SerialPort::new();
        sp.write(ports::SACR, 2);
        sp.inject(b'!');
        assert_eq!(
            sp.pending(),
            Some(Interrupt {
                priority: 2,
                vector: SERIAL_A_VECTOR
            })
        );
        assert_eq!(sp.read(ports::SACR).unwrap(), 2);
        // Priority 0 disables and clears.
        sp.write(ports::SACR, 0);
        assert!(sp.pending().is_none());
    }

    #[test]
    fn transmit_capture() {
        let mut sp = SerialPort::new();
        sp.write(ports::SADR, b'o');
        sp.write(ports::SADR, b'k');
        assert_eq!(sp.transmitted(), b"ok");
    }

    #[test]
    fn tx_shifter_completes_arithmetically() {
        let mut sp = SerialPort::new();
        sp.set_tx_shift_cycles(100);
        sp.write(ports::SADR, b'a');
        sp.write(ports::SADR, b'b');
        assert_eq!(sp.transmitted(), b"", "bytes still in the shifter");
        assert_eq!(sp.read(ports::SASR).unwrap() & 0x04, 0, "tx busy");
        assert_eq!(Device::next_deadline(&sp), Some(100));
        sp.tick(130);
        assert_eq!(sp.transmitted(), b"a");
        assert_eq!(Device::next_deadline(&sp), Some(70));
        sp.tick(70);
        assert_eq!(sp.transmitted(), b"ab");
        assert_eq!(sp.read(ports::SASR).unwrap() & 0x04, 0x04, "tx idle");
        assert_eq!(Device::next_deadline(&sp), None);
    }

    #[test]
    fn tx_shifter_tick_is_additive() {
        let mut batched = SerialPort::new();
        let mut stepped = SerialPort::new();
        for sp in [&mut batched, &mut stepped] {
            sp.set_tx_shift_cycles(64);
            for b in b"abcdef" {
                sp.write(ports::SADR, *b);
            }
        }
        batched.tick(64 * 6);
        for _ in 0..64 * 3 {
            stepped.tick(2);
        }
        assert_eq!(batched.transmitted(), stepped.transmitted());
        assert_eq!(batched.transmitted(), b"abcdef");
    }

    #[test]
    fn zero_shift_cycles_transmits_instantly() {
        let mut sp = SerialPort::new();
        sp.write(ports::SADR, b'x');
        assert_eq!(sp.transmitted(), b"x");
        assert_eq!(Device::next_deadline(&sp), None);
        assert_eq!(sp.read(ports::SASR).unwrap() & 0x04, 0x04);
    }

    #[test]
    fn fifo_overrun_counts() {
        let mut sp = SerialPort::new();
        for i in 0..100 {
            sp.inject(i);
        }
        assert_eq!(sp.overruns, 100 - 64);
    }
}
