//! Serial port A of the RMC2000 — the debugging channel of the paper's
//! §5.1: "We used the serial port on the RMC2000 board for debugging. We
//! configured the serial interface to interrupt the processor when a
//! character arrived."

use std::any::Any;
use std::collections::VecDeque;

use rabbit::io::ports;
use rabbit::{Device, Interrupt, PortRange};

/// Logical address of serial port A's interrupt service routine vector.
pub const SERIAL_A_VECTOR: u16 = 0x00E0;

/// The serial port peripheral.
#[derive(Debug, Default)]
pub struct SerialPort {
    rx: VecDeque<u8>,
    tx: Vec<u8>,
    /// Receive interrupts enabled (`SACR` bit 0).
    pub rx_interrupt_enabled: bool,
    irq_pending: bool,
    /// Characters dropped because the receive FIFO overflowed.
    pub overruns: u64,
}

/// Depth of the receive FIFO.
const RX_FIFO: usize = 64;

impl SerialPort {
    /// Creates an idle port.
    pub fn new() -> SerialPort {
        SerialPort::default()
    }

    /// Host side: injects a received character (as if it arrived on the
    /// wire). Raises the interrupt when enabled.
    pub fn inject(&mut self, byte: u8) {
        if self.rx.len() >= RX_FIFO {
            self.overruns += 1;
            return;
        }
        self.rx.push_back(byte);
        if self.rx_interrupt_enabled {
            self.irq_pending = true;
        }
    }

    /// Host side: everything the firmware transmitted so far.
    pub fn transmitted(&self) -> &[u8] {
        &self.tx
    }

    /// Host side: clears the transmit capture.
    pub fn clear_transmitted(&mut self) {
        self.tx.clear();
    }

    /// CPU side: reads a port register.
    pub fn read(&mut self, port: u16) -> Option<u8> {
        match port {
            ports::SADR => {
                let b = self.rx.pop_front().unwrap_or(0);
                if self.rx.is_empty() {
                    self.irq_pending = false;
                }
                Some(b)
            }
            ports::SASR => {
                // bit 7: receive data ready; bit 2: transmit idle (always)
                let mut st = 0x04;
                if !self.rx.is_empty() {
                    st |= 0x80;
                }
                Some(st)
            }
            ports::SACR => Some(u8::from(self.rx_interrupt_enabled)),
            _ => None,
        }
    }

    /// CPU side: writes a port register.
    pub fn write(&mut self, port: u16, value: u8) -> bool {
        match port {
            ports::SADR => {
                self.tx.push(value);
                true
            }
            ports::SACR => {
                self.rx_interrupt_enabled = value & 1 != 0;
                if !self.rx_interrupt_enabled {
                    self.irq_pending = false;
                } else if !self.rx.is_empty() {
                    self.irq_pending = true;
                }
                true
            }
            _ => false,
        }
    }

    /// Pending interrupt request, if any.
    pub fn pending(&self) -> Option<Interrupt> {
        self.irq_pending.then_some(Interrupt {
            priority: 1,
            vector: SERIAL_A_VECTOR,
        })
    }

    /// Acknowledge (the ISR will drain the data register).
    pub fn acknowledge(&mut self) {
        self.irq_pending = false;
    }
}

impl Device for SerialPort {
    fn name(&self) -> &'static str {
        "serial-a"
    }

    fn claims(&self) -> Vec<PortRange> {
        // SADR..SACR covers the data, status, and control registers.
        vec![PortRange::internal(ports::SADR, ports::SACR)]
    }

    fn read(&mut self, port: u16, _external: bool) -> u8 {
        self.read(port).unwrap_or(0xFF)
    }

    fn write(&mut self, port: u16, value: u8, _external: bool) {
        self.write(port, value);
    }

    fn pending(&self) -> Option<Interrupt> {
        SerialPort::pending(self)
    }

    fn acknowledge(&mut self, _vector: u16) {
        SerialPort::acknowledge(self);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_read_round_trip() {
        let mut sp = SerialPort::new();
        sp.inject(b'X');
        assert_eq!(sp.read(ports::SASR).unwrap() & 0x80, 0x80);
        assert_eq!(sp.read(ports::SADR).unwrap(), b'X');
        assert_eq!(sp.read(ports::SASR).unwrap() & 0x80, 0);
    }

    #[test]
    fn interrupt_only_when_enabled() {
        let mut sp = SerialPort::new();
        sp.inject(1);
        assert!(sp.pending().is_none());
        sp.write(ports::SACR, 1);
        assert!(sp.pending().is_some(), "enable with data pending raises");
        sp.read(ports::SADR);
        assert!(sp.pending().is_none(), "draining clears");
    }

    #[test]
    fn transmit_capture() {
        let mut sp = SerialPort::new();
        sp.write(ports::SADR, b'o');
        sp.write(ports::SADR, b'k');
        assert_eq!(sp.transmitted(), b"ok");
    }

    #[test]
    fn fifo_overrun_counts() {
        let mut sp = SerialPort::new();
        for i in 0..100 {
            sp.inject(i);
        }
        assert_eq!(sp.overruns, 100 - 64);
    }
}
