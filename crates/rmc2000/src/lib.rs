//! A model of the **RMC2000 TCP/IP Development Kit**: the Rabbit 2000 CPU
//! with 512 KiB flash and 128 KiB SRAM behind a device bus that carries
//! serial port A (receive interrupts — the paper's §5.1 debugging
//! channel), a free-running real-time clock, and a port-mapped NIC
//! bridged to a `netsim` host, plus `defineErrorHandler`-style fault
//! dispatch.
//!
//! Two network paths exist in the repo, at different levels of the stack:
//! `sockets::dynic` models the kit's TCP/IP *API* for host-compiled
//! firmware logic, while this crate runs *guest instructions* against the
//! simulated network — the [`nic::Nic`] device converts executed cycles
//! to virtual microseconds, so the board and the `netsim` world share one
//! deterministic clock. Assembled firmware (see [`firmware`]) serves real
//! TCP traffic to `netsim` clients through `ioe`-mapped packet windows;
//! [`echo::run_echo`] is the reference end-to-end session.
//!
//! ```
//! use rmc2000::{Board, RunOutcome};
//! use rabbit::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble("        org 0x4000\n        ld a, 0x42\n        halt\n")?;
//! let mut board = Board::new();
//! board.load(&image);
//! board.set_pc(0x4000);
//! assert_eq!(board.run(10_000), RunOutcome::Halted);
//! assert_eq!(board.cpu.regs.a, 0x42);
//! # Ok(())
//! # }
//! ```

pub mod board;
pub mod echo;
pub mod faults;
pub mod firmware;
pub mod fleet;
pub mod nic;
pub mod secure;
pub mod serial;
pub mod serve;

pub use board::{Board, BoardCounters, Rtc, RunOutcome};
pub use faults::{AppliedFault, FaultEvent, FaultPlan, FaultReport, ScheduledFault};
pub use fleet::{
    fleet_faults, fleet_serve, BackendStats, BoardReport, BoardState, Fleet, FleetFirmware,
    FleetRun, FleetSpec, LbPolicy, EPOCH_CYCLES, EPOCH_US,
};
pub use nic::{Nic, NicBackend, NicCounters, SimBackend, NIC_VECTOR};
pub use secure::{
    build_secure_firmware, secure_serve, ClientOutcome, ConnCounters, GuestClient, SecureRun,
    Tamper, ALERT_KIND_LABELS, SECURE_PORT,
};
pub use serial::{SerialPort, SERIAL_A_VECTOR};
pub use serve::{serve_clients, ServeRun, SERVE_PORT};

// The loader's address convention is the repo-wide one (shared with the
// `dcc` harness); re-exported so existing `rmc2000::load_phys` callers
// keep working.
pub use rabbit::fwmap::load_phys;
