//! A model of the **RMC2000 TCP/IP Development Kit**: the Rabbit 2000 CPU
//! with 512 KiB flash and 128 KiB SRAM, serial port A wired for
//! receive interrupts (the paper's §5.1 debugging channel), a free-running
//! real-time clock, and `defineErrorHandler`-style fault dispatch.
//!
//! The kit's TCP/IP stack is modelled at the API level by
//! `sockets::dynic` (see DESIGN.md): firmware-visible networking runs
//! there, while this crate provides the *instruction-level* substrate the
//! paper's performance experiments need.
//!
//! ```
//! use rmc2000::{Board, RunOutcome};
//! use rabbit::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble("        org 0x4000\n        ld a, 0x42\n        halt\n")?;
//! let mut board = Board::new();
//! board.load(&image);
//! board.set_pc(0x4000);
//! assert_eq!(board.run(10_000), RunOutcome::Halted);
//! assert_eq!(board.cpu.regs.a, 0x42);
//! # Ok(())
//! # }
//! ```

pub mod board;
pub mod serial;

pub use board::{Board, BoardIo, RunOutcome};
pub use serial::{SerialPort, SERIAL_A_VECTOR};

/// Maps a logical firmware address to the physical address the loader
/// writes (shared convention with `dcc::harness`): root code below
/// `0x8000` sits in flash at its own address, data at `0x8000..0xE000`
/// lands in SRAM through the data-segment mapping, and xmem-window
/// sections land on the page `XPC = 0x76` selects.
pub fn load_phys(addr: u16) -> u32 {
    if addr >= 0xE000 {
        u32::from(addr) + 0x76 * 0x1000
    } else if addr >= 0x8000 {
        u32::from(addr) + 0x78000
    } else {
        u32::from(addr)
    }
}
