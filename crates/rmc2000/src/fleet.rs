//! Fleet scheduler: N boards, one deterministic world, one clock owner.
//!
//! The one-board drivers let the board's NIC backend drag the shared
//! [`World`] clock forward ([`crate::nic::ClockMode::Follow`]): whenever
//! the board's local cycle count crossed a poll boundary, the backend
//! called `run_for` on the world. That contract cannot scale past one
//! board — with two boards each dragging the clock, whoever polls first
//! advances time under the other's feet, and every observable becomes a
//! function of host-side iteration order. This module lifts time
//! ownership out of the NIC: the [`Fleet`] scheduler is the only party
//! that advances the world, and every board's backend is a passive
//! participant ([`crate::nic::ClockMode::Passive`]) that just reads
//! `now` and moves bytes.
//!
//! # The epoch barrier
//!
//! Boards advance in lockstep epochs of [`EPOCH_US`] microseconds
//! (= one NIC poll period, [`EPOCH_CYCLES`] cycles). One epoch ending at
//! virtual time `T`:
//!
//! 1. the world runs `(T-50, T]` first — every in-flight segment due in
//!    the window is delivered before any board looks;
//! 2. each board then executes its own `(T-50, T]` cycle slice; its NIC
//!    poll at the epoch boundary observes the world at exactly `T`.
//!
//! Within an epoch the boards touch disjoint state (their own sockets,
//! their own memories), and every send a board performs is stamped at
//! the same world time `T`, so the order boards are visited in is
//! unobservable: shuffling the per-epoch visit order changes no
//! transcript, counter, or cycle count. Poll boundaries depend only on
//! accumulated cycle totals, so both CPU engines see identical crossings
//! and the whole schedule is engine-invariant.
//!
//! # Idle fast-forward
//!
//! When every board is parked (halted, no dispatchable interrupt) the
//! scheduler skips ahead whole epochs at once, bounded by the world's
//! next scheduled event and every board's device deadline
//! ([`rabbit::Bus::next_deadline`], the E12 event-horizon hook) — the
//! fleet-level analogue of [`crate::Board::idle`]'s batched halted time.
//! The skip decision is a function of barrier state only, so it too is
//! visit-order- and engine-invariant.
//!
//! # Solo mode
//!
//! The legacy one-board drivers ([`crate::serve::serve_clients`],
//! [`crate::secure::secure_serve`]) run on the same scheduler in solo
//! mode: one Follow-mode board, pumped with the exact legacy
//! run/probe/idle sequence. A one-board fleet is byte-identical to the
//! pre-fleet drivers by construction.

use std::cell::RefCell;
use std::rc::Rc;

use rabbit::nicmap::MAX_CONNS;
use rabbit::{Engine, IoSpace};

use netsim::{Endpoint, Ipv4, LinkId, LinkParams, LoadBalancer, SimHost, SocketId, World};

pub use netsim::{BackendStats, LbPolicy};

use crate::board::{Board, RunOutcome};
use crate::faults::{AppliedFault, FaultEvent, FaultPlan, FaultReport, ScheduledFault};
use crate::nic::{Nic, CYCLES_PER_US, POLL_PERIOD_US};
use crate::secure::{
    build_secure_firmware, client_states, step_client, ClientOutcome, ConnCounters, GuestClient,
    SECURE_PORT,
};
use crate::serve::{build_serve_firmware, SERIAL_PROBE, SERVE_PORT};

/// One scheduling epoch in microseconds — exactly one NIC poll period,
/// so every board's boundary poll lands on the barrier.
pub const EPOCH_US: u64 = POLL_PERIOD_US;

/// One scheduling epoch in CPU cycles.
pub const EPOCH_CYCLES: u64 = EPOCH_US * CYCLES_PER_US;

/// Whether a fleet slot is advancing or frozen by a scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoardState {
    /// Advancing normally: every epoch brings the board to the barrier.
    Running,
    /// Wedged by a [`crate::faults::FaultEvent::Wedge`]: the scheduler
    /// skips the slot — no cycles run, no idle time accrues, telemetry
    /// freezes — until a resurrection (if any). The board's netsim
    /// *host* still exists; whoever wedged the board is responsible for
    /// also blacking out its link, because the host-side TCP stack
    /// would otherwise keep answering SYNs on the frozen board's
    /// behalf.
    Wedged,
}

struct Slot {
    board: Board,
    host: SimHost,
    /// Absolute cycle target at the current epoch's end. Instruction
    /// overshoot (a board cannot stop mid-instruction) carries forward:
    /// the next epoch's slice is that much shorter.
    target: u64,
    state: BoardState,
}

/// A set of boards sharing one [`World`], advanced in deterministic
/// lockstep by the single clock owner.
pub struct Fleet {
    world: Rc<RefCell<World>>,
    slots: Vec<Slot>,
    solo: bool,
    epochs: u64,
}

impl Fleet {
    /// An empty fleet over `world`.
    pub fn new(world: &Rc<RefCell<World>>) -> Fleet {
        Fleet {
            world: Rc::clone(world),
            slots: Vec::new(),
            solo: false,
            epochs: 0,
        }
    }

    /// The shared world (cloned handle).
    pub fn world(&self) -> Rc<RefCell<World>> {
        Rc::clone(&self.world)
    }

    /// Number of boards in the fleet.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the fleet has no boards.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Epochs completed so far (fast-forwarded epochs included).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Adds the single board of a legacy solo fleet: its NIC follows the
    /// legacy clock contract (the backend drags the world) and its
    /// telemetry registers under the unprefixed single-board names.
    ///
    /// # Panics
    ///
    /// If the fleet already has a board — solo means exactly one.
    pub fn add_solo_board(&mut self, engine: Engine, name: &str, ip: Ipv4) -> usize {
        assert!(self.slots.is_empty(), "solo fleet holds exactly one board");
        self.solo = true;
        let host = SimHost::attach(&self.world, name, ip);
        let mut board = Board::with_engine(engine);
        board.bind_telemetry(self.world.borrow().telemetry());
        board.attach_nic(Nic::simulated(host.clone()));
        self.slots.push(Slot {
            board,
            host,
            target: 0,
            state: BoardState::Running,
        });
        0
    }

    /// Adds board `len()` to an epoch-scheduled fleet: a passive NIC
    /// backend (only this scheduler advances the clock) and telemetry
    /// namespaced under `board<idx>.`.
    ///
    /// # Panics
    ///
    /// If the fleet was opened in solo mode.
    pub fn add_board(&mut self, engine: Engine, name: &str, ip: Ipv4) -> usize {
        assert!(!self.solo, "solo fleet holds exactly one board");
        let idx = self.slots.len();
        let host = SimHost::attach(&self.world, name, ip);
        let mut board = Board::with_engine(engine);
        board.bind_telemetry_board(self.world.borrow().telemetry(), idx);
        board.attach_nic(Nic::fleet_attached(host.clone(), idx));
        self.slots.push(Slot {
            board,
            host,
            target: 0,
            state: BoardState::Running,
        });
        idx
    }

    /// Board `i`.
    pub fn board(&self, i: usize) -> &Board {
        &self.slots[i].board
    }

    /// Board `i`, mutably.
    pub fn board_mut(&mut self, i: usize) -> &mut Board {
        &mut self.slots[i].board
    }

    /// Board `i`'s network host handle.
    pub fn host(&self, i: usize) -> &SimHost {
        &self.slots[i].host
    }

    /// Board `i`'s IP address.
    pub fn ip(&self, i: usize) -> Ipv4 {
        self.slots[i].host.ip()
    }

    /// Whether board `i` is parked: halted with no dispatchable
    /// interrupt, i.e. nothing to do until a peripheral deadline. A
    /// wedged board counts as parked — it contributes nothing until
    /// resurrected, and must not block fleet-wide fast-forward.
    pub fn parked(&mut self, i: usize) -> bool {
        let s = &mut self.slots[i];
        s.state == BoardState::Wedged
            || (s.board.cpu.halted && s.board.bus.pending_interrupt().is_none())
    }

    /// Board `i`'s fault state.
    pub fn state(&self, i: usize) -> BoardState {
        self.slots[i].state
    }

    /// Wedges board `i`: from the next epoch on, the scheduler skips
    /// the slot entirely — no cycles, no idle time, frozen telemetry.
    /// The caller must also black out the board's link (the host-side
    /// TCP stack would otherwise answer SYNs for the frozen board); the
    /// fleet fault driver does both.
    ///
    /// # Panics
    ///
    /// If called on a solo fleet.
    pub fn wedge(&mut self, i: usize) {
        assert!(!self.solo, "faults drive multi-board fleets");
        self.slots[i].state = BoardState::Wedged;
    }

    /// Resurrects a wedged board. Lost time is lost: the cycle target
    /// snaps to the board's frozen cycle count, so the board resumes
    /// from where it stopped instead of replaying the missed epochs.
    ///
    /// # Panics
    ///
    /// If called on a solo fleet.
    pub fn resurrect(&mut self, i: usize) {
        assert!(!self.solo, "faults drive multi-board fleets");
        let s = &mut self.slots[i];
        s.state = BoardState::Running;
        s.target = s.board.cpu.cycles;
    }

    /// Whether every board is parked.
    pub fn all_parked(&mut self) -> bool {
        (0..self.slots.len()).all(|i| self.parked(i))
    }

    /// One legacy solo pump: run up to `run_chunk` cycles; on halt,
    /// offer the host a hook (console probes) and burn `idle_chunk`
    /// halted cycles. Byte-identical to the pre-fleet driver loops.
    ///
    /// # Panics
    ///
    /// If the firmware stops for any reason other than halting.
    pub fn solo_pump(&mut self, run_chunk: u64, idle_chunk: u64, on_halt: impl FnOnce(&mut Board)) {
        assert!(self.solo, "solo_pump drives a solo fleet");
        let board = &mut self.slots[0].board;
        match board.run(run_chunk) {
            RunOutcome::Halted => {
                on_halt(board);
                board.idle(idle_chunk);
            }
            RunOutcome::BudgetExhausted => {}
            other => panic!("firmware stopped: {other:?}"),
        }
    }

    /// One legacy solo teardown step: run, and idle if halted. Unlike
    /// [`Fleet::solo_pump`] a non-halt stop is ignored, matching the
    /// pre-fleet teardown loops.
    pub fn solo_settle(&mut self, run_chunk: u64, idle_chunk: u64) {
        assert!(self.solo, "solo_settle drives a solo fleet");
        let board = &mut self.slots[0].board;
        if board.run(run_chunk) == RunOutcome::Halted {
            board.idle(idle_chunk);
        }
    }

    /// Runs one epoch: the world first reaches the epoch's end, then
    /// every board — visited in `order` — executes its cycle slice up to
    /// the barrier. `order` must name each board exactly once; any
    /// permutation yields identical observables (see module docs).
    ///
    /// # Panics
    ///
    /// If called on a solo fleet, or a board's firmware stops for any
    /// reason other than halting.
    pub fn run_epoch(&mut self, order: &[usize]) {
        assert!(!self.solo, "the epoch scheduler drives multi-board fleets");
        debug_assert_eq!(
            {
                let mut o = order.to_vec();
                o.sort_unstable();
                o
            },
            (0..self.slots.len()).collect::<Vec<_>>(),
            "order visits every board exactly once"
        );
        self.world.borrow_mut().run_for(EPOCH_US);
        for &i in order {
            self.advance_slot(i);
        }
        self.epochs += 1;
    }

    /// Brings board `i` up to its epoch-end cycle target, mixing
    /// execution and batched halted time. A wedged slot is skipped
    /// outright: its target does not advance, so no catch-up debt
    /// accrues while frozen.
    fn advance_slot(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        if slot.state == BoardState::Wedged {
            return;
        }
        slot.target += EPOCH_CYCLES;
        while slot.board.cpu.cycles < slot.target {
            let left = slot.target - slot.board.cpu.cycles;
            match slot.board.run(left) {
                RunOutcome::Halted => {
                    // `run` returns Halted without consuming the budget
                    // when the CPU is already parked; burn the remainder
                    // as batched halted time.
                    let left = slot.target.saturating_sub(slot.board.cpu.cycles);
                    if left > 0 {
                        slot.board.idle(left);
                    }
                }
                RunOutcome::BudgetExhausted => {}
                other => panic!("board {i} firmware stopped: {other:?}"),
            }
        }
    }

    /// Skips up to `max_epochs` whole epochs of fleet-wide idleness in
    /// one batch. Applies only when every board is parked, and is
    /// bounded by the world's next scheduled event and every board's
    /// soonest device deadline, so nothing observable lands inside the
    /// skipped window. Returns the number of epochs skipped.
    pub fn fast_forward(&mut self, max_epochs: u64) -> u64 {
        assert!(!self.solo, "the epoch scheduler drives multi-board fleets");
        if max_epochs == 0 || self.slots.is_empty() || !self.all_parked() {
            return 0;
        }
        let mut k = max_epochs;
        {
            let w = self.world.borrow();
            if let Some(t) = w.next_event_time() {
                let now = w.now();
                if t <= now {
                    return 0;
                }
                // The event's own epoch runs normally: skip strictly
                // short of the boundary it lands on.
                k = k.min((t - now - 1) / EPOCH_US);
            }
        }
        for s in &mut self.slots {
            if s.state == BoardState::Wedged {
                continue; // frozen: no deadlines, no idle time
            }
            if let Some(d) = s.board.bus.next_deadline() {
                k = k.min(d / EPOCH_CYCLES);
            }
        }
        if k == 0 {
            return 0;
        }
        self.world.borrow_mut().run_for(k * EPOCH_US);
        for s in &mut self.slots {
            if s.state == BoardState::Wedged {
                continue;
            }
            s.target += k * EPOCH_CYCLES;
            let left = s.target.saturating_sub(s.board.cpu.cycles);
            if left > 0 {
                s.board.idle(left);
            }
        }
        self.epochs += k;
        k
    }
}

// ---------------------------------------------------------------------------
// Balanced fleet serving driver
// ---------------------------------------------------------------------------

/// Which guest firmware every board of a [`fleet_serve`] run boots.
#[derive(Debug, Clone)]
pub enum FleetFirmware {
    /// The plaintext echo server ([`crate::serve::echo_server_c`]).
    PlainEcho,
    /// The secure server with `psk` poked into its C globals; it serves
    /// plain echo on the same port via first-byte sniffing.
    SecureEcho { psk: Vec<u8> },
}

/// Workload description for one [`fleet_serve`] run.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// CPU engine every board runs on.
    pub engine: Engine,
    /// Compiler options for the shared firmware build.
    pub opts: dcc::Options,
    /// Number of boards behind the balancer.
    pub boards: usize,
    /// How the balancer routes new connections.
    pub policy: LbPolicy,
    /// Firmware flavour (one build, loaded into every board).
    pub firmware: FleetFirmware,
    /// Host-side clients, all dialing the balancer's front port.
    pub clients: Vec<GuestClient>,
    /// Inject a console probe into every parked board each `gap`
    /// microseconds of virtual time (per-board schedule).
    pub probe_gap_us: Option<u64>,
    /// Board indices whose balancer link drops every packet — the
    /// dead-backend case the balancer must route around.
    pub dead_links: Vec<usize>,
    /// Per-epoch board visit orders, cycled; empty means index order.
    /// Any sequence of permutations yields identical observables.
    pub orders: Vec<Vec<usize>>,
    /// Scripted faults (flaps, wedges, storms) applied at epoch
    /// boundaries; empty means a fault-free run.
    pub faults: FaultPlan,
    /// Per-client dial times in absolute virtual µs (same order as
    /// `clients`); a client whose time falls inside boot dials right
    /// after boot. Empty means everyone dials as soon as the fleet is
    /// up — the legacy shape.
    pub dials: Vec<u64>,
    /// Balancer dead-backend re-probe gap
    /// ([`LoadBalancer::set_retry_after_us`]); `None` keeps dead
    /// backends dead for the run.
    pub lb_retry_after_us: Option<u64>,
    /// Balancer established-session stall timeout
    /// ([`LoadBalancer::set_stall_timeout_us`]). Must exceed the
    /// longest legitimate guest compute gap (a secure handshake's
    /// SHA-1/KDF burst keeps the wire silent for hundreds of virtual
    /// ms). `None` never stalls a session out.
    pub lb_stall_timeout_us: Option<u64>,
}

impl FleetSpec {
    /// A spec with the common defaults: round-robin, secure firmware,
    /// no probes, no dead links, index visit order.
    #[must_use]
    pub fn new(engine: Engine, boards: usize, psk: &[u8], clients: Vec<GuestClient>) -> FleetSpec {
        FleetSpec {
            engine,
            opts: dcc::Options::all_optimizations(),
            boards,
            policy: LbPolicy::RoundRobin,
            firmware: FleetFirmware::SecureEcho { psk: psk.to_vec() },
            clients,
            probe_gap_us: None,
            dead_links: Vec::new(),
            orders: Vec::new(),
            faults: FaultPlan::new(),
            dials: Vec::new(),
            lb_retry_after_us: None,
            lb_stall_timeout_us: None,
        }
    }
}

/// What one board did over a [`fleet_serve`] run.
#[derive(Debug, Clone)]
pub struct BoardReport {
    /// Telemetry namespace label (`board<idx>`).
    pub label: String,
    /// Cycles consumed (halted time included).
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Guest `naccepts` counter.
    pub accepts: u16,
    /// Guest `nopen` counter — 0 after an orderly teardown.
    pub open: u16,
    /// Per-handle guest counters (secure firmware only; empty for
    /// plain echo).
    pub conns: Vec<ConnCounters>,
    /// Guest alerts by reason code (secure firmware only; all zero for
    /// plain echo) — see [`crate::secure::ALERT_KIND_LABELS`].
    pub alert_kinds: [u16; 3],
    /// Serial console output.
    pub serial_tx: Vec<u8>,
}

/// Result of one balanced fleet serving run.
#[derive(Debug)]
pub struct FleetRun {
    /// Per-client observations, in `clients` order.
    pub outcomes: Vec<ClientOutcome>,
    /// Per-board reports, in board order.
    pub boards: Vec<BoardReport>,
    /// Balancer per-backend routing statistics, in board order.
    pub backends: Vec<BackendStats>,
    /// Epochs the fleet scheduler ran (fast-forwarded ones included).
    pub epochs: u64,
    /// Final virtual time of the shared world, in microseconds.
    pub virtual_us: u64,
    /// Total bytes echoed back across all clients.
    pub echoed_bytes: u64,
    /// Deterministic text snapshot of the world telemetry (per-board
    /// namespaced counters plus the balancer's `lb.*` family).
    pub snapshot: String,
    /// Root code size of the shared firmware, in bytes.
    pub code_size: usize,
    /// What the fault plan did: applied events, corrupted-frame count,
    /// the failover-latency book, and wedge-time telemetry captures.
    pub faults: FaultReport,
}

/// Applies a compiled [`FaultPlan`] to a running fleet: events fire at
/// the first epoch boundary at or after their due time, in plan order.
/// Application is a pure function of virtual time — engine- and
/// visit-order-invariant.
struct FaultDriver {
    events: Vec<ScheduledFault>,
    next: usize,
    report: FaultReport,
}

impl FaultDriver {
    fn new(plan: &FaultPlan, boards: usize) -> FaultDriver {
        let events = plan.compiled();
        for e in &events {
            let b = match &e.event {
                FaultEvent::SetDropRate { board, .. }
                | FaultEvent::RestoreDropRate { board }
                | FaultEvent::Wedge { board }
                | FaultEvent::Resurrect { board }
                | FaultEvent::StormStart { board, .. }
                | FaultEvent::StormEnd { board } => *board,
            };
            assert!(b < boards, "fault plan names board {b} of {boards}");
        }
        FaultDriver {
            events,
            next: 0,
            report: FaultReport::default(),
        }
    }

    /// Due time of the next unapplied event — a fast-forward bound, so
    /// a fleet-wide idle skip never jumps a fault.
    fn next_due_us(&self) -> Option<u64> {
        self.events.get(self.next).map(|e| e.at_us)
    }

    /// Applies every event due at or before the world's current time.
    fn apply_due(
        &mut self,
        fleet: &mut Fleet,
        world: &Rc<RefCell<World>>,
        links: &[LinkId],
        dead_links: &[usize],
    ) {
        let now = world.borrow().now();
        while self.next < self.events.len() && self.events[self.next].at_us <= now {
            let ev = self.events[self.next].clone();
            self.next += 1;
            let base = |board: &usize| if dead_links.contains(board) { 1.0 } else { 0.0 };
            let what = match &ev.event {
                FaultEvent::SetDropRate { board, rate } => {
                    world.borrow_mut().set_drop_rate(links[*board], *rate);
                    format!("flap board{board} drop_rate={rate}")
                }
                FaultEvent::RestoreDropRate { board } => {
                    world.borrow_mut().set_drop_rate(links[*board], base(board));
                    format!("restore board{board} drop_rate={}", base(board))
                }
                FaultEvent::Wedge { board } => {
                    // Freeze the epochs AND black out the link: the
                    // host-side TCP stack would otherwise answer SYNs
                    // for the frozen board and hide the wedge from the
                    // balancer's connect timeout.
                    fleet.wedge(*board);
                    world.borrow_mut().set_drop_rate(links[*board], 1.0);
                    let snap = world.borrow().telemetry().snapshot().to_text();
                    let prefix = format!("board{board}.net.board.");
                    let frozen: String = snap
                        .lines()
                        .filter(|l| l.starts_with(&prefix))
                        .map(|l| format!("{l}\n"))
                        .collect();
                    self.report.wedge_snapshots.push((*board, frozen));
                    format!("wedge board{board}")
                }
                FaultEvent::Resurrect { board } => {
                    fleet.resurrect(*board);
                    world.borrow_mut().set_drop_rate(links[*board], base(board));
                    format!("resurrect board{board}")
                }
                FaultEvent::StormStart { board, spec } => {
                    world
                        .borrow_mut()
                        .set_corruption(links[*board], Some(spec.clone()));
                    format!("storm board{board} armed")
                }
                FaultEvent::StormEnd { board } => {
                    world.borrow_mut().set_corruption(links[*board], None);
                    format!("storm board{board} cleared")
                }
            };
            self.report.applied.push(AppliedFault {
                at_us: ev.at_us,
                applied_us: now,
                what,
            });
        }
    }
}

/// Runs `spec.boards` boards behind a simulated TCP load balancer
/// against `spec.clients` concurrent host-side clients. Every
/// observable is a deterministic function of the spec — identical on
/// both engines and under any per-epoch board visit order.
///
/// # Panics
///
/// If a board's firmware faults or the session does not converge.
pub fn fleet_serve(spec: &FleetSpec) -> FleetRun {
    assert!(spec.boards >= 1, "a fleet has at least one board");
    let (build, port) = match &spec.firmware {
        FleetFirmware::PlainEcho => (build_serve_firmware(spec.opts), SERVE_PORT),
        FleetFirmware::SecureEcho { .. } => (build_secure_firmware(spec.opts), SECURE_PORT),
    };

    let world = Rc::new(RefCell::new(World::new(42)));
    let mut fleet = Fleet::new(&world);
    for i in 0..spec.boards {
        let ip = Ipv4::new(10, 0, 1, 1 + u8::try_from(i).expect("few boards"));
        let b = fleet.add_board(spec.engine, &format!("rmc2000-{i}"), ip);
        let board = fleet.board_mut(b);
        board.load(&build.image);
        board.set_pc(dcc::layout::CODE_ORG);
        if let FleetFirmware::SecureEcho { psk } = &spec.firmware {
            assert!(psk.len() <= 64, "guest PSK buffer is 64 bytes");
            let psk_phys = build.symbol_phys("_psk").expect("C global `psk`");
            board.mem.load(psk_phys, psk);
            let psklen_phys = build.symbol_phys("_psklen").expect("C global `psklen`");
            board
                .mem
                .load(psklen_phys, &(psk.len() as u16).to_le_bytes());
        }
    }

    let mut lb = LoadBalancer::attach(
        &world,
        "lb",
        Ipv4::new(10, 0, 0, 250),
        port,
        64,
        spec.policy,
    );
    // Each board owns MAX_CONNS connection handles; clients beyond the
    // fleet-wide capacity wait at the balancer, not in a board backlog
    // (where the connect-timeout health check would misread a busy
    // board as a dead one).
    lb.set_max_inflight(Some(MAX_CONNS));
    lb.set_retry_after_us(spec.lb_retry_after_us);
    lb.set_stall_timeout_us(spec.lb_stall_timeout_us);
    let lb_ip = lb.host().ip();
    let mut board_links: Vec<LinkId> = Vec::with_capacity(spec.boards);
    for i in 0..spec.boards {
        let link = if spec.dead_links.contains(&i) {
            LinkParams::ethernet_10base_t().with_drop_rate(1.0)
        } else {
            LinkParams::ethernet_10base_t()
        };
        let board_host = fleet.host(i).id();
        board_links.push(world.borrow_mut().link(lb.host().id(), board_host, link));
        lb.add_backend(Endpoint::new(fleet.ip(i), port));
    }

    let mut hosts: Vec<SimHost> = (0..spec.clients.len())
        .map(|i| {
            let ip = Ipv4::new(10, 0, 2, 1 + u8::try_from(i).expect("few clients"));
            let host = SimHost::attach(&world, "client", ip);
            world
                .borrow_mut()
                .link(lb.host().id(), host.id(), LinkParams::ethernet_10base_t());
            host
        })
        .collect();

    let identity: Vec<usize> = (0..spec.boards).collect();
    let order_at = |orders: &[Vec<usize>], e: u64| -> Vec<usize> {
        if orders.is_empty() {
            identity.clone()
        } else {
            orders[usize::try_from(e).expect("few epochs") % orders.len()].clone()
        }
    };

    let mut faults = FaultDriver::new(&spec.faults, spec.boards);

    // Boot: every board's main seeds its state, configures serial + NIC,
    // and parks in idle().
    let mut boot_epochs = 0u64;
    loop {
        let order = order_at(&spec.orders, fleet.epochs());
        fleet.run_epoch(&order);
        faults.apply_due(&mut fleet, &world, &board_links, &spec.dead_links);
        boot_epochs += 1;
        if fleet.all_parked() {
            break;
        }
        assert!(boot_epochs < 2_000, "fleet firmware boots");
    }

    // Clients dial the balancer's front address at their scheduled
    // times (everyone immediately, in the legacy no-dials shape).
    assert!(
        spec.dials.is_empty() || spec.dials.len() == spec.clients.len(),
        "one dial time per client"
    );
    let dial_at: Vec<u64> = if spec.dials.is_empty() {
        vec![0; spec.clients.len()]
    } else {
        spec.dials.clone()
    };
    let mut conns: Vec<Option<SocketId>> = vec![None; spec.clients.len()];
    let mut state = client_states(&spec.clients);

    const MAX_EPOCHS: u64 = 4_000_000; // 200 virtual seconds
    const FF_CHUNK: u64 = 200; // 10ms of skipped idle per decision

    let mut next_probe: Vec<u64> = vec![spec.probe_gap_us.unwrap_or(0); spec.boards];

    loop {
        {
            let now = world.borrow().now();
            for (i, conn) in conns.iter_mut().enumerate() {
                if conn.is_none() && now >= dial_at[i] {
                    *conn = Some(hosts[i].connect(Endpoint::new(lb_ip, port)));
                }
            }
        }
        if state.iter().all(|s| s.done) {
            break;
        }
        assert!(
            fleet.epochs() < MAX_EPOCHS,
            "fleet serve session did not converge"
        );
        let order = order_at(&spec.orders, fleet.epochs());
        fleet.run_epoch(&order);
        faults.apply_due(&mut fleet, &world, &board_links, &spec.dead_links);
        lb.pump();

        if let Some(gap) = spec.probe_gap_us {
            // Probes only against a parked board: the injection point is
            // then a deterministic function of virtual time, identical
            // on both engines and under any visit order.
            let now = world.borrow().now();
            for (i, due) in next_probe.iter_mut().enumerate() {
                // A wedged board is parked but must not accumulate a
                // backlog of probe bytes to replay on resurrection; its
                // probe clock keeps ticking, it just skips the injects.
                let wedged = fleet.state(i) == BoardState::Wedged;
                if now >= *due && fleet.parked(i) {
                    if !wedged {
                        fleet.board_mut(i).serial_mut().inject(SERIAL_PROBE);
                    }
                    *due = now + gap;
                }
            }
        }

        for ((host, conn), st) in hosts.iter_mut().zip(&conns).zip(state.iter_mut()) {
            if let Some(conn) = conn {
                if !st.done {
                    step_client(host, *conn, st);
                }
            }
        }

        // Fleet-wide idle skip, held short of the next probe due-time,
        // the next scheduled fault and the next client dial, so none of
        // those schedules is disturbed.
        let mut bound = FF_CHUNK;
        {
            let now = world.borrow().now();
            let mut soonest = u64::MAX;
            if spec.probe_gap_us.is_some() {
                soonest = soonest.min(next_probe.iter().copied().min().unwrap_or(u64::MAX));
            }
            if let Some(t) = faults.next_due_us() {
                soonest = soonest.min(t);
            }
            for (i, conn) in conns.iter().enumerate() {
                if conn.is_none() {
                    soonest = soonest.min(dial_at[i]);
                }
            }
            if soonest != u64::MAX {
                bound = if soonest > now {
                    bound.min((soonest - now) / EPOCH_US)
                } else {
                    0
                };
            }
        }
        if bound > 0 {
            fleet.fast_forward(bound);
        }
    }

    // Orderly teardown: FINs propagate through the balancer, the guests
    // observe them and free their handles. Late plan events (a
    // resurrection scheduled past the last echo) still apply.
    for _ in 0..150 {
        let order = order_at(&spec.orders, fleet.epochs());
        fleet.run_epoch(&order);
        faults.apply_due(&mut fleet, &world, &board_links, &spec.dead_links);
        lb.pump();
    }

    let read_arr = |board: &Board, name: &str, idx: usize| -> u16 {
        let phys = build.symbol_phys(name).expect("C global exists") + 2 * idx as u32;
        u16::from_le_bytes([board.mem.read_phys(phys), board.mem.read_phys(phys + 1)])
    };

    let reports: Vec<BoardReport> = (0..spec.boards)
        .map(|i| {
            let board = fleet.board(i);
            let conns = match &spec.firmware {
                FleetFirmware::PlainEcho => Vec::new(),
                FleetFirmware::SecureEcho { .. } => (0..MAX_CONNS)
                    .map(|h| ConnCounters {
                        handshakes: read_arr(board, "_hs_ok", h),
                        records_in: read_arr(board, "_rec_in", h),
                        records_out: read_arr(board, "_rec_out", h),
                        alerts: read_arr(board, "_alerts", h),
                    })
                    .collect(),
            };
            let alert_kinds = match &spec.firmware {
                FleetFirmware::PlainEcho => [0; 3],
                FleetFirmware::SecureEcho { .. } => [
                    read_arr(board, "_alert_kind", 0),
                    read_arr(board, "_alert_kind", 1),
                    read_arr(board, "_alert_kind", 2),
                ],
            };
            BoardReport {
                label: format!("board{i}"),
                cycles: board.cpu.cycles,
                instructions: board.cpu.instructions,
                accepts: read_arr(board, "_naccepts", 0),
                open: read_arr(board, "_nopen", 0),
                conns,
                alert_kinds,
                serial_tx: board.serial().transmitted().to_vec(),
            }
        })
        .collect();

    // Publish the guests' counters into the shared registry under their
    // board namespaces, mirroring what `secure_serve` does for board 0.
    {
        let w = world.borrow();
        let reg = w.telemetry();
        for r in &reports {
            for (h, c) in r.conns.iter().enumerate() {
                let hl = h.to_string();
                let labels = [("conn", hl.as_str())];
                for (name, v) in [
                    ("issl.guest.handshakes", u64::from(c.handshakes)),
                    ("issl.guest.records.in", u64::from(c.records_in)),
                    ("issl.guest.records.out", u64::from(c.records_out)),
                    ("issl.guest.alerts", u64::from(c.alerts)),
                ] {
                    reg.counter(&format!("{}.{name}", r.label), &labels).add(v);
                }
            }
            if !r.conns.is_empty() {
                for (kind, &v) in crate::secure::ALERT_KIND_LABELS.iter().zip(&r.alert_kinds) {
                    reg.counter(&format!("{}.issl.guest.alerts.kind", r.label), &[("kind", *kind)])
                        .add(u64::from(v));
                }
            }
        }
    }

    let snapshot = world.borrow().telemetry().snapshot().to_text();
    let virtual_us = world.borrow().now();
    let echoed_bytes = state.iter().map(|s| s.out.echoed.len() as u64).sum();
    faults.report.corrupted_frames = world.borrow().stats.corrupted.get();
    faults.report.failover_latencies_us = lb.failover_latencies_us().to_vec();
    FleetRun {
        outcomes: state.into_iter().map(|s| s.out).collect(),
        boards: reports,
        backends: lb.backend_stats(),
        epochs: fleet.epochs(),
        virtual_us,
        echoed_bytes,
        snapshot,
        code_size: build.code_size(),
        faults: faults.report,
    }
}

/// The fault-scripted fleet driver: [`fleet_serve`] under a non-empty
/// [`FaultPlan`]. The separate entry point exists so fault scenarios
/// read as what they are; the scheduling machinery is shared, and a
/// plan-free spec is rejected rather than silently running a vanilla
/// serve.
///
/// # Panics
///
/// If `spec.faults` is empty, a board's firmware faults, or the session
/// does not converge.
pub fn fleet_faults(spec: &FleetSpec) -> FleetRun {
    assert!(
        !spec.faults.is_empty(),
        "fleet_faults wants a fault plan; use fleet_serve for fault-free runs"
    );
    fleet_serve(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_clients(n: usize) -> Vec<GuestClient> {
        (0..n)
            .map(|i| GuestClient::Plain {
                messages: vec![format!("fleet echo {i}").into_bytes()],
            })
            .collect()
    }

    #[test]
    fn two_board_fleet_serves_plain_echo() {
        let mut spec = FleetSpec::new(Engine::Interpreter, 2, b"", echo_clients(4));
        spec.firmware = FleetFirmware::PlainEcho;
        let r = fleet_serve(&spec);
        for (i, o) in r.outcomes.iter().enumerate() {
            assert_eq!(o.echoed, format!("fleet echo {i}").into_bytes(), "client {i}");
        }
        // Round-robin spread the four sessions evenly.
        assert_eq!(
            r.backends.iter().map(|b| b.served).collect::<Vec<_>>(),
            vec![2, 2]
        );
        for b in &r.boards {
            assert_eq!(b.open, 0, "{} freed its handles", b.label);
        }
        assert!(r.snapshot.contains("board0.net.board.conn.accepts"));
        assert!(r.snapshot.contains("board1.net.board.conn.accepts"));
    }

    #[test]
    fn visit_order_is_unobservable() {
        let mut a = FleetSpec::new(Engine::Interpreter, 3, b"", echo_clients(6));
        a.firmware = FleetFirmware::PlainEcho;
        let mut b = a.clone();
        b.orders = vec![vec![2, 0, 1], vec![1, 2, 0]];
        let ra = fleet_serve(&a);
        let rb = fleet_serve(&b);
        assert_eq!(ra.outcomes, rb.outcomes);
        assert_eq!(ra.snapshot, rb.snapshot);
        assert_eq!(ra.virtual_us, rb.virtual_us);
        assert_eq!(ra.epochs, rb.epochs);
    }
}
