//! The on-guest secure channel: the `issl` record layer served from
//! *compiled C* firmware.
//!
//! Where [`crate::serve`] echoes plaintext, this module compiles a full
//! record-layer runtime — record framing, PSK key derivation, AES-128/128
//! CBC and HMAC-SHA1 — written in the Dynamic C subset, links it against
//! the hand-assembly AES core from `aes-rabbit`
//! ([`aes_rabbit::aes128_linked_module`]), and serves up to
//! [`rabbit::nicmap::MAX_CONNS`] concurrent secure sessions to host-side
//! `issl` clients through netsim. The paper's port (§5) moved the
//! service's record layer onto the board the same way: C for the protocol
//! logic, assembly for the cipher inner loops.
//!
//! The C side has no 32-bit arithmetic, so SHA-1 runs on 16-bit limb
//! pairs (`*_hi`/`*_lo`) with explicit carry propagation; every wire
//! constant is spliced in from [`issl::recmap`] — the Dynamic C subset
//! has no preprocessor, so the shared "header" is generated, not
//! included. A session's connection handle doubles as its session index.
//!
//! Everything observable — plaintext transcripts, raw record bytes,
//! alerts, serial output, cycle counts, telemetry — is byte-identical
//! across the interpreter and block-cache engines; the tier-1 suites
//! assert it.

use std::cell::RefCell;
use std::rc::Rc;

use crypto::Prng;
use issl::recmap;
use issl::{CipherSuite, ClientConfig, ClientKx, SessionMachine};
use netsim::{Endpoint, Ipv4, LinkParams, Recv, SimHost, SocketId, World};
use rabbit::nicmap::{
    MAX_CONNS, STATUS_ACCEPT_READY, STATUS_ERR, STATUS_PEER_CLOSED, STATUS_RX_AVAIL,
    STATUS_TX_READY,
};
use rabbit::Engine;
use telemetry::{ProfileReport, SymbolTable};

use crate::nic::NIC_VECTOR;
use crate::serial::SERIAL_A_VECTOR;
use crate::serve::SERIAL_PROBE;
use crate::RunOutcome;

/// TCP port the secure server listens on.
pub const SECURE_PORT: u16 = 443;

/// Per-session reassembly buffer, in bytes. Sized so the largest record
/// body the guest accepts ([`MAX_GUEST_BODY`] + header) plus one more
/// full Ethernet frame always fits — the guest never reads a byte it
/// cannot buffer.
pub const REASM: usize = 2600;

/// Largest record body the guest accepts. The host record layer allows
/// [`recmap::MAX_RECORD`]; the guest serves [`recmap::FRAGMENT`]-sized
/// data records (body ≤ 16 + 1040 + 20 = 1076 bytes) and statically
/// allocates for exactly that, per the paper's no-`malloc` rule (§5.2).
/// Anything larger draws an alert and a close.
pub const MAX_GUEST_BODY: usize = 1100;

/// Seed of the guest's 16-bit LCG nonce/IV generator (set by `main`).
/// Fixed, so both engines draw the same stream — the secure channel's
/// determinism story, not its security story.
pub const GUEST_PRNG_SEED: u16 = 935;

// ---------------------------------------------------------------------------
// Generated C source
// ---------------------------------------------------------------------------

/// Emits `dst[start + i] = bytes[i];` statements — how byte-string
/// constants (alert texts, KDF labels) reach a language with no string
/// literals.
fn put_bytes(dst: &str, start: usize, bytes: &[u8]) -> String {
    bytes
        .iter()
        .enumerate()
        .map(|(i, b)| format!("        {dst}[{}] = {};\n", start + i, b))
        .collect()
}

/// The crypto half of the guest: SHA-1 / HMAC-SHA1 / the issl KDF on
/// 16-bit limbs, plus the LCG the server draws nonces and IVs from.
/// Kept separate from [`record_c`] so the differential tests can drive
/// it under a bare test `main`.
fn crypto_c() -> String {
    let template = "\
/* ---- SHA-1 / HMAC / KDF on 16-bit limbs ---- */
char hbuf[1216];
int hlen;
char dig[20];
int w_hi[80];
int w_lo[80];
int s_hi[5];
int s_lo[5];
char hkey[64];
int hklen;
char hmsg[1100];
int hmlen;
char idig[20];
char psk[64];
int psklen;
char kmaster[20];
char kb[80];
char tbuf[120];
char thash[60];
char ckey[48];
char skey[48];
char cmac[60];
char smac[60];
int rnd;

int rnd_byte() {
    rnd = (rnd * 25173) + 13849;
    return (rnd >> 8) & 255;
}

void sha1_run() {
    int n; int i; int j; int t; int bits;
    int a_hi; int a_lo; int b_hi; int b_lo; int c_hi; int c_lo;
    int d_hi; int d_lo; int e_hi; int e_lo;
    int f_hi; int f_lo; int k_hi; int k_lo;
    int t_hi; int t_lo; int u_hi; int u_lo;
    n = hlen;
    bits = n << 3;
    hbuf[n] = 128;
    n = n + 1;
    while ((n & 63) != 56) { hbuf[n] = 0; n = n + 1; }
    for (i = 0; i < 6; i = i + 1) { hbuf[n] = 0; n = n + 1; }
    hbuf[n] = (bits >> 8) & 255;
    hbuf[n + 1] = bits & 255;
    n = n + 2;
    s_hi[0] = 0x6745; s_lo[0] = 0x2301;
    s_hi[1] = 0xEFCD; s_lo[1] = 0xAB89;
    s_hi[2] = 0x98BA; s_lo[2] = 0xDCFE;
    s_hi[3] = 0x1032; s_lo[3] = 0x5476;
    s_hi[4] = 0xC3D2; s_lo[4] = 0xE1F0;
    j = 0;
    while (j < n) {
        for (i = 0; i < 16; i = i + 1) {
            t = j + (i << 2);
            w_hi[i] = (hbuf[t] << 8) | hbuf[t + 1];
            w_lo[i] = (hbuf[t + 2] << 8) | hbuf[t + 3];
        }
        for (i = 16; i < 80; i = i + 1) {
            u_hi = ((w_hi[i - 3] ^ w_hi[i - 8]) ^ w_hi[i - 14]) ^ w_hi[i - 16];
            u_lo = ((w_lo[i - 3] ^ w_lo[i - 8]) ^ w_lo[i - 14]) ^ w_lo[i - 16];
            w_hi[i] = (u_hi << 1) | (u_lo >> 15);
            w_lo[i] = (u_lo << 1) | (u_hi >> 15);
        }
        a_hi = s_hi[0]; a_lo = s_lo[0];
        b_hi = s_hi[1]; b_lo = s_lo[1];
        c_hi = s_hi[2]; c_lo = s_lo[2];
        d_hi = s_hi[3]; d_lo = s_lo[3];
        e_hi = s_hi[4]; e_lo = s_lo[4];
        for (i = 0; i < 80; i = i + 1) {
            if (i < 20) {
                f_hi = (b_hi & c_hi) | ((~b_hi) & d_hi);
                f_lo = (b_lo & c_lo) | ((~b_lo) & d_lo);
                k_hi = 0x5A82; k_lo = 0x7999;
            } else if (i < 40) {
                f_hi = (b_hi ^ c_hi) ^ d_hi;
                f_lo = (b_lo ^ c_lo) ^ d_lo;
                k_hi = 0x6ED9; k_lo = 0xEBA1;
            } else if (i < 60) {
                f_hi = ((b_hi & c_hi) | (b_hi & d_hi)) | (c_hi & d_hi);
                f_lo = ((b_lo & c_lo) | (b_lo & d_lo)) | (c_lo & d_lo);
                k_hi = 0x8F1B; k_lo = 0xBCDC;
            } else {
                f_hi = (b_hi ^ c_hi) ^ d_hi;
                f_lo = (b_lo ^ c_lo) ^ d_lo;
                k_hi = 0xCA62; k_lo = 0xC1D6;
            }
            t_hi = (a_hi << 5) | (a_lo >> 11);
            t_lo = (a_lo << 5) | (a_hi >> 11);
            t_lo = t_lo + f_lo;
            if (t_lo < f_lo) t_hi = t_hi + 1;
            t_hi = t_hi + f_hi;
            t_lo = t_lo + e_lo;
            if (t_lo < e_lo) t_hi = t_hi + 1;
            t_hi = t_hi + e_hi;
            t_lo = t_lo + k_lo;
            if (t_lo < k_lo) t_hi = t_hi + 1;
            t_hi = t_hi + k_hi;
            t_lo = t_lo + w_lo[i];
            if (t_lo < w_lo[i]) t_hi = t_hi + 1;
            t_hi = t_hi + w_hi[i];
            e_hi = d_hi; e_lo = d_lo;
            d_hi = c_hi; d_lo = c_lo;
            c_hi = (b_hi >> 2) | (b_lo << 14);
            c_lo = (b_lo >> 2) | (b_hi << 14);
            b_hi = a_hi; b_lo = a_lo;
            a_hi = t_hi; a_lo = t_lo;
        }
        s_lo[0] = s_lo[0] + a_lo;
        if (s_lo[0] < a_lo) s_hi[0] = s_hi[0] + 1;
        s_hi[0] = s_hi[0] + a_hi;
        s_lo[1] = s_lo[1] + b_lo;
        if (s_lo[1] < b_lo) s_hi[1] = s_hi[1] + 1;
        s_hi[1] = s_hi[1] + b_hi;
        s_lo[2] = s_lo[2] + c_lo;
        if (s_lo[2] < c_lo) s_hi[2] = s_hi[2] + 1;
        s_hi[2] = s_hi[2] + c_hi;
        s_lo[3] = s_lo[3] + d_lo;
        if (s_lo[3] < d_lo) s_hi[3] = s_hi[3] + 1;
        s_hi[3] = s_hi[3] + d_hi;
        s_lo[4] = s_lo[4] + e_lo;
        if (s_lo[4] < e_lo) s_hi[4] = s_hi[4] + 1;
        s_hi[4] = s_hi[4] + e_hi;
        j = j + 64;
    }
    for (i = 0; i < 5; i = i + 1) {
        t = i << 2;
        dig[t] = (s_hi[i] >> 8) & 255;
        dig[t + 1] = s_hi[i] & 255;
        dig[t + 2] = (s_lo[i] >> 8) & 255;
        dig[t + 3] = s_lo[i] & 255;
    }
}

void hmac_run() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        if (i < hklen) hbuf[i] = hkey[i] ^ 54;
        else hbuf[i] = 54;
    }
    for (i = 0; i < hmlen; i = i + 1) hbuf[64 + i] = hmsg[i];
    hlen = 64 + hmlen;
    sha1_run();
    for (i = 0; i < 20; i = i + 1) idig[i] = dig[i];
    for (i = 0; i < 64; i = i + 1) {
        if (i < hklen) hbuf[i] = hkey[i] ^ 92;
        else hbuf[i] = 92;
    }
    for (i = 0; i < 20; i = i + 1) hbuf[64 + i] = idig[i];
    hlen = 84;
    sha1_run();
}

void kdf_run(int h) {
    int i; int r; int tb; int o;
    tb = h * 40;
    for (i = 0; i < psklen; i = i + 1) hkey[i] = psk[i];
    hklen = psklen;
@MASTER@
    for (i = 0; i < @NONCE@; i = i + 1) hmsg[6 + i] = tbuf[(tb + 2) + i];
    for (i = 0; i < @NONCE@; i = i + 1) hmsg[22 + i] = tbuf[(tb + 20) + i];
    hmlen = 38;
    hmac_run();
    for (i = 0; i < 20; i = i + 1) kmaster[i] = dig[i];
    for (r = 0; r < 4; r = r + 1) {
        for (i = 0; i < 20; i = i + 1) hkey[i] = kmaster[i];
        hklen = 20;
        hmsg[0] = r;
@KEYEXP@
        for (i = 0; i < @NONCE@; i = i + 1) hmsg[14 + i] = tbuf[(tb + 2) + i];
        for (i = 0; i < @NONCE@; i = i + 1) hmsg[30 + i] = tbuf[(tb + 20) + i];
        hmlen = 46;
        hmac_run();
        o = r * 20;
        for (i = 0; i < 20; i = i + 1) kb[o + i] = dig[i];
    }
    o = h * 16;
    for (i = 0; i < 16; i = i + 1) ckey[o + i] = kb[i];
    for (i = 0; i < 16; i = i + 1) skey[o + i] = kb[16 + i];
    o = h * 20;
    for (i = 0; i < 20; i = i + 1) cmac[o + i] = kb[32 + i];
    for (i = 0; i < 20; i = i + 1) smac[o + i] = kb[52 + i];
}
";
    template
        .replace("@MASTER@", put_bytes("hmsg", 0, b"master").trim_end())
        .replace("@KEYEXP@", put_bytes("hmsg", 1, b"key expansion").trim_end())
        .replace("@NONCE@", &recmap::NONCE_LEN.to_string())
}

/// The record-layer half of the guest: framing, the per-handle session
/// state machine, the NIC and serial service routines, and `main`.
///
/// Session states: 0 = awaiting `ClientHello` (sniffing), 1 = awaiting
/// `KeyExchange`, 2 = awaiting `Finished`, 3 = established, 4 =
/// plaintext echo (first byte was not a `ClientHello` — the port serves
/// mixed load on one listener), 5 = closed.
fn record_c(port: u16) -> String {
    let template = "\
/* ---- record layer, served round-robin over the NIC handles ---- */
extern void aes_expand();
extern void aes_enc();
extern void aes_dec();

root char rxb[@RXBSZ@];
int rxlen[@CONNS@];
root char nb[1472];
root char sb[@REASM@];
char ptb[1088];
char cprev[16];
char aes_key[16];
char aes_blk[16];
int sstate[@CONNS@];
int seqi[@CONNS@];
int seqo[@CONNS@];
int hs_ok[@CONNS@];
int rec_in[@CONNS@];
int rec_out[@CONNS@];
int alerts[@CONNS@];
int alert_kind[3];
int naccepts;
int nopen;

void send_rec(int h, int t, int blen) {
    sb[0] = t;
    sb[1] = (blen >> 8) & 255;
    sb[2] = blen & 255;
    nic_send(h, sb, blen + @HDR@);
}

void send_alert(int h, int w) {
    int n;
    if (w == 1) {
@ALERT_SUITE@
        n = @ALERT_SUITE_LEN@;
    } else if (w == 2) {
@ALERT_FIN@
        n = @ALERT_FIN_LEN@;
    } else {
@ALERT_CLOSE@
        n = @ALERT_CLOSE_LEN@;
    }
    send_rec(h, @ALERT@, n);
}

void fail(int h, int w) {
    int st;
    st = nic_conn(h);
    if (st & @OPEN@) send_alert(h, w);
    nic_close(h);
    sstate[h] = 5;
    rxlen[h] = 0;
    alerts[h] = alerts[h] + 1;
    alert_kind[w] = alert_kind[w] + 1;
}

int do_hello(int h, int blen) {
    int i; int tb; int base;
    base = (h * @REASM@) + @HDR@;
    tb = h * 40;
    if (blen != @CHLEN@) return 0;
    if (rxb[base] != @GEOM0@) return 2;
    if (rxb[base + 1] != @GEOM1@) return 2;
    for (i = 0; i < @CHLEN@; i = i + 1) tbuf[tb + i] = rxb[base + i];
    tbuf[tb + 18] = @GEOM0@;
    tbuf[tb + 19] = @GEOM1@;
    for (i = 0; i < @NONCE@; i = i + 1) tbuf[(tb + 20) + i] = rnd_byte();
    for (i = 0; i < 4; i = i + 1) tbuf[(tb + 36) + i] = 0;
    for (i = 0; i < @SHLEN@; i = i + 1) sb[@HDR@ + i] = tbuf[(tb + 18) + i];
    send_rec(h, @SH@, @SHLEN@);
    return 1;
}

void do_kx(int h) {
    int i; int o;
    o = h * 40;
    for (i = 0; i < 40; i = i + 1) hbuf[i] = tbuf[o + i];
    hlen = 40;
    sha1_run();
    o = h * @MACL@;
    for (i = 0; i < @MACL@; i = i + 1) thash[o + i] = dig[i];
    kdf_run(h);
}

int do_finished(int h, int blen) {
    int i; int bad; int base; int o;
    base = (h * @REASM@) + @HDR@;
    if (blen != @MACL@) return 0;
    o = h * @MACL@;
    for (i = 0; i < @MACL@; i = i + 1) hkey[i] = cmac[o + i];
    hklen = @MACL@;
    for (i = 0; i < @MACL@; i = i + 1) hmsg[i] = thash[o + i];
    hmlen = @MACL@;
    hmac_run();
    bad = 0;
    for (i = 0; i < @MACL@; i = i + 1) {
        if (dig[i] != rxb[base + i]) bad = 1;
    }
    if (bad) return 0;
    for (i = 0; i < @MACL@; i = i + 1) hkey[i] = smac[o + i];
    hmac_run();
    for (i = 0; i < @MACL@; i = i + 1) sb[@HDR@ + i] = dig[i];
    send_rec(h, @FIN@, @MACL@);
    return 1;
}

void send_data(int h, int npt) {
    int i; int k; int nct; int b; int nblk; int pad; int o;
    pad = 16 - (npt & 15);
    for (i = 0; i < pad; i = i + 1) ptb[npt + i] = pad;
    nct = npt + pad;
    o = h * 16;
    for (i = 0; i < 16; i = i + 1) aes_key[i] = skey[o + i];
    aes_expand();
    for (i = 0; i < 16; i = i + 1) {
        k = rnd_byte();
        cprev[i] = k;
        sb[@HDR@ + i] = k;
    }
    nblk = nct >> 4;
    for (b = 0; b < nblk; b = b + 1) {
        o = b << 4;
        for (i = 0; i < 16; i = i + 1) aes_blk[i] = ptb[o + i] ^ cprev[i];
        aes_enc();
        k = (@HDR@ + 16) + o;
        for (i = 0; i < 16; i = i + 1) {
            sb[k + i] = aes_blk[i];
            cprev[i] = aes_blk[i];
        }
    }
    for (i = 0; i < 6; i = i + 1) hmsg[i] = 0;
    hmsg[6] = (seqo[h] >> 8) & 255;
    hmsg[7] = seqo[h] & 255;
    k = 16 + nct;
    for (i = 0; i < k; i = i + 1) hmsg[8 + i] = sb[@HDR@ + i];
    hmlen = k + 8;
    o = h * @MACL@;
    for (i = 0; i < @MACL@; i = i + 1) hkey[i] = smac[o + i];
    hklen = @MACL@;
    hmac_run();
    k = (@HDR@ + 16) + nct;
    for (i = 0; i < @MACL@; i = i + 1) sb[k + i] = dig[i];
    send_rec(h, @DATA@, (16 + nct) + @MACL@);
    seqo[h] = seqo[h] + 1;
    rec_out[h] = rec_out[h] + 1;
}

int do_data(int h, int blen) {
    int i; int k; int nct; int npt; int base; int pad; int bad; int nblk; int b; int o;
    base = (h * @REASM@) + @HDR@;
    if (blen < 52) return 0;
    nct = blen - 36;
    if (nct & 15) return 0;
    for (i = 0; i < 6; i = i + 1) hmsg[i] = 0;
    hmsg[6] = (seqi[h] >> 8) & 255;
    hmsg[7] = seqi[h] & 255;
    k = blen - @MACL@;
    for (i = 0; i < k; i = i + 1) hmsg[8 + i] = rxb[base + i];
    hmlen = k + 8;
    o = h * @MACL@;
    for (i = 0; i < @MACL@; i = i + 1) hkey[i] = cmac[o + i];
    hklen = @MACL@;
    hmac_run();
    bad = 0;
    k = (base + blen) - @MACL@;
    for (i = 0; i < @MACL@; i = i + 1) {
        if (dig[i] != rxb[k + i]) bad = 1;
    }
    if (bad) return 0;
    o = h * 16;
    for (i = 0; i < 16; i = i + 1) aes_key[i] = ckey[o + i];
    aes_expand();
    for (i = 0; i < 16; i = i + 1) cprev[i] = rxb[base + i];
    nblk = nct >> 4;
    for (b = 0; b < nblk; b = b + 1) {
        k = (base + 16) + (b << 4);
        o = b << 4;
        for (i = 0; i < 16; i = i + 1) aes_blk[i] = rxb[k + i];
        aes_dec();
        for (i = 0; i < 16; i = i + 1) ptb[o + i] = aes_blk[i] ^ cprev[i];
        for (i = 0; i < 16; i = i + 1) cprev[i] = rxb[k + i];
    }
    npt = nct;
    pad = ptb[npt - 1];
    if (pad == 0) return 0;
    if (pad > 16) return 0;
    bad = 0;
    for (i = 0; i < pad; i = i + 1) {
        if (ptb[(npt - 1) - i] != pad) bad = 1;
    }
    if (bad) return 0;
    npt = npt - pad;
    seqi[h] = seqi[h] + 1;
    rec_in[h] = rec_in[h] + 1;
    send_data(h, npt);
    return 1;
}

void pump(int h) {
    int base; int t; int blen; int i; int r;
    base = h * @REASM@;
    while (1) {
        if (sstate[h] == 5) {
            rxlen[h] = 0;
            return;
        }
        if (rxlen[h] == 0) return;
        if (sstate[h] == 0) {
            if (rxb[base] != @CH@) sstate[h] = 4;
        }
        if (sstate[h] == 4) {
            for (i = 0; i < rxlen[h]; i = i + 1) sb[i] = rxb[base + i];
            nic_send(h, sb, rxlen[h]);
            rxlen[h] = 0;
            return;
        }
        if (rxlen[h] < @HDR@) return;
        t = rxb[base];
        blen = (rxb[base + 1] << 8) | rxb[base + 2];
        if (t < @CH@) { fail(h, 0); return; }
        if (t > @ALERT@) { fail(h, 0); return; }
        if (blen > @MAXBODY@) { fail(h, 0); return; }
        if (rxlen[h] < (blen + @HDR@)) return;
        if (t == @ALERT@) {
            nic_close(h);
            sstate[h] = 5;
            rxlen[h] = 0;
            return;
        }
        if (sstate[h] == 0) {
            r = do_hello(h, blen);
            if (r == 2) { fail(h, 1); return; }
            if (r == 0) { fail(h, 0); return; }
            sstate[h] = 1;
        } else if (sstate[h] == 1) {
            if (t != @KX@) { fail(h, 0); return; }
            do_kx(h);
            sstate[h] = 2;
        } else if (sstate[h] == 2) {
            if (t != @FIN@) { fail(h, 2); return; }
            r = do_finished(h, blen);
            if (r == 0) { fail(h, 2); return; }
            sstate[h] = 3;
            hs_ok[h] = hs_ok[h] + 1;
        } else {
            if (t != @DATA@) { fail(h, 0); return; }
            r = do_data(h, blen);
            if (r == 0) { fail(h, 0); return; }
        }
        rxlen[h] = rxlen[h] - (blen + @HDR@);
        for (i = 0; i < rxlen[h]; i = i + 1) rxb[base + i] = rxb[(base + (blen + @HDR@)) + i];
    }
}

interrupt void nic_isr() {
    int st; int h; int n; int i; int again; int base;
    again = 1;
    while (again) {
        again = 0;
        for (h = 0; h < @CONNS@; h = h + 1) {
            st = nic_conn(h);
            if ((st & @ACC@) && !(st & @OPEN@)) {
                st = nic_accept(h);
                if (!(st & @ERR@)) {
                    naccepts = naccepts + 1;
                    sstate[h] = 0;
                    rxlen[h] = 0;
                    seqi[h] = 0;
                    seqo[h] = 0;
                }
                again = 1;
                st = nic_conn(h);
            }
            if (st & @RX@) {
                n = nic_recv(h, nb);
                base = h * @REASM@;
                if ((rxlen[h] + n) > @REASM@) {
                    fail(h, 0);
                } else {
                    for (i = 0; i < n; i = i + 1) rxb[(base + rxlen[h]) + i] = nb[i];
                    rxlen[h] = rxlen[h] + n;
                    pump(h);
                }
                again = 1;
                st = nic_conn(h);
            }
            if ((st & @OPEN@) && (st & @GONE@) && !(st & @RX@)) {
                if ((sstate[h] != 4) && (sstate[h] != 5) && (rxlen[h] != 0)) {
                    fail(h, 0);
                } else {
                    nic_close(h);
                    sstate[h] = 5;
                    rxlen[h] = 0;
                }
                again = 1;
            }
        }
    }
    n = 0;
    for (h = 0; h < @CONNS@; h = h + 1) {
        if (nic_conn(h) & @OPEN@) n = n + 1;
    }
    nopen = n;
}

interrupt void ser_isr() {
    while (serial_status() & 0x80) {
        serial_getc();
        serial_putc(83);
        serial_putc(48 + nopen);
        serial_putc(10);
    }
}

int main() {
    rnd = @SEED@;
    serial_init(2);
    nic_listen(@PORT@);
    nic_ier(1);
    idle();
    return 0;
}
";
    template
        .replace("@RXBSZ@", &(REASM * MAX_CONNS).to_string())
        .replace("@REASM@", &REASM.to_string())
        .replace("@CONNS@", &MAX_CONNS.to_string())
        .replace("@HDR@", &recmap::HEADER_LEN.to_string())
        .replace("@MAXBODY@", &MAX_GUEST_BODY.to_string())
        .replace("@CH@", &recmap::REC_CLIENT_HELLO.to_string())
        .replace("@SH@", &recmap::REC_SERVER_HELLO.to_string())
        .replace("@KX@", &recmap::REC_KEY_EXCHANGE.to_string())
        .replace("@FIN@", &recmap::REC_FINISHED.to_string())
        .replace("@DATA@", &recmap::REC_DATA.to_string())
        .replace("@ALERT@", &recmap::REC_ALERT.to_string())
        .replace("@CHLEN@", &recmap::CLIENT_HELLO_LEN.to_string())
        .replace("@SHLEN@", &recmap::SERVER_HELLO_PSK_LEN.to_string())
        .replace("@NONCE@", &recmap::NONCE_LEN.to_string())
        .replace("@MACL@", &recmap::MAC_LEN.to_string())
        .replace("@GEOM0@", &recmap::AES128_GEOMETRY[0].to_string())
        .replace("@GEOM1@", &recmap::AES128_GEOMETRY[1].to_string())
        .replace(
            "@ALERT_SUITE@",
            put_bytes("sb", recmap::HEADER_LEN, recmap::ALERT_UNSUPPORTED_SUITE).trim_end(),
        )
        .replace(
            "@ALERT_SUITE_LEN@",
            &recmap::ALERT_UNSUPPORTED_SUITE.len().to_string(),
        )
        .replace(
            "@ALERT_FIN@",
            put_bytes("sb", recmap::HEADER_LEN, recmap::ALERT_BAD_FINISHED).trim_end(),
        )
        .replace(
            "@ALERT_FIN_LEN@",
            &recmap::ALERT_BAD_FINISHED.len().to_string(),
        )
        .replace(
            "@ALERT_CLOSE@",
            put_bytes("sb", recmap::HEADER_LEN, recmap::ALERT_CLOSE).trim_end(),
        )
        .replace("@ALERT_CLOSE_LEN@", &recmap::ALERT_CLOSE.len().to_string())
        .replace("@ACC@", &STATUS_ACCEPT_READY.to_string())
        .replace("@OPEN@", &STATUS_TX_READY.to_string())
        .replace("@ERR@", &STATUS_ERR.to_string())
        .replace("@RX@", &STATUS_RX_AVAIL.to_string())
        .replace("@GONE@", &STATUS_PEER_CLOSED.to_string())
        .replace("@SEED@", &GUEST_PRNG_SEED.to_string())
        .replace("@PORT@", &port.to_string())
}

/// The complete secure-server translation unit, in the Dynamic C subset.
pub fn secure_server_c(port: u16) -> String {
    format!("{}{}", crypto_c(), record_c(port))
}

/// Compiles [`secure_server_c`] and links the hand-assembly AES module
/// behind its `extern` declarations, then checks the memory map: the
/// compiled C must stay clear of the module's code, table, and workspace
/// origins — the assertion is the link-time "linker script".
///
/// Loop unrolling is forced off whatever `opts` says: unrolled, the
/// SHA-1 rounds alone push the record runtime past the module origin,
/// and a build that cannot fit is not an optimization level.
///
/// # Panics
///
/// If the C source fails to compile, the link fails, or any two image
/// sections overlap.
pub fn build_secure_firmware(opts: dcc::Options) -> dcc::Build {
    let opts = dcc::Options {
        unroll: false,
        ..opts
    };
    let module = aes_rabbit::aes128_linked_module();
    let build = dcc::build_firmware_linked(
        &secure_server_c(SECURE_PORT),
        opts,
        &[(SERIAL_A_VECTOR, "ser_isr"), (NIC_VECTOR, "nic_isr")],
        &[&module],
    )
    .expect("C secure server compiles and links");
    let mut spans: Vec<(u16, usize)> = build
        .image
        .sections
        .iter()
        .map(|s| (s.addr, s.bytes.len()))
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        assert!(
            usize::from(w[0].0) + w[0].1 <= usize::from(w[1].0),
            "image sections overlap: {:#06x}+{} vs {:#06x}",
            w[0].0,
            w[0].1,
            w[1].0
        );
    }
    build
}

// ---------------------------------------------------------------------------
// Host-side driver
// ---------------------------------------------------------------------------

/// A deliberate protocol violation a test client commits against the
/// guest, to pin down the server's failure behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tamper {
    /// Behave; the session should complete.
    None,
    /// After establishing, flip the last MAC byte of the first outgoing
    /// data record. The guest must alert and close.
    FlipDataMac,
    /// After establishing, send a bare record header promising a body
    /// that never comes, then close the connection. The guest must treat
    /// the truncated record as fatal.
    TruncateAfterHeader,
}

/// One host-side client in a [`secure_serve`] session.
#[derive(Debug, Clone)]
pub enum GuestClient {
    /// A sans-I/O `issl` client machine doing the full PSK handshake and
    /// echoing `messages` through the secure channel. A `psk` different
    /// from the board's models the wrong-credential case.
    Secure {
        messages: Vec<Vec<u8>>,
        psk: Vec<u8>,
        tamper: Tamper,
    },
    /// A plaintext echo client on the same port (the guest sniffs the
    /// first byte and falls back to plain echo).
    Plain { messages: Vec<Vec<u8>> },
    /// Sends `payload` verbatim once connected and records whatever
    /// comes back — for handcrafted records the client machine would
    /// refuse to emit.
    Raw { payload: Vec<u8> },
    /// Sends `payload` once connected and then hangs up immediately —
    /// the client that disconnects mid-handshake. Whatever the guest
    /// answers (typically an alert) lands in `raw_rx`.
    HangUp { payload: Vec<u8> },
}

impl GuestClient {
    /// A well-behaved secure echo client.
    #[must_use]
    pub fn secure(messages: &[&[u8]], psk: &[u8]) -> Self {
        GuestClient::Secure {
            messages: messages.iter().map(|m| m.to_vec()).collect(),
            psk: psk.to_vec(),
            tamper: Tamper::None,
        }
    }
}

/// What one client observed over its connection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClientOutcome {
    /// The secure channel reached `Established` (secure clients) or the
    /// TCP connection came up (plain/raw clients).
    pub established: bool,
    /// Plaintext echoed back through the channel (secure), or raw bytes
    /// echoed (plain).
    pub echoed: Vec<u8>,
    /// Every raw byte received over TCP, records and all.
    pub raw_rx: Vec<u8>,
    /// The guest ended the stream with an alert.
    pub peer_closed: bool,
    /// The client machine's sticky error, if it failed (`Debug` form).
    pub error: Option<String>,
}

/// Final values of one connection handle's guest-side counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnCounters {
    /// Handshakes completed on this handle.
    pub handshakes: u16,
    /// Data records accepted (MAC verified, padding valid).
    pub records_in: u16,
    /// Data records sent.
    pub records_out: u16,
    /// Fatal alerts raised.
    pub alerts: u16,
}

/// Labels for the guest's per-kind alert counters, indexed by the
/// firmware's `fail(h, w)` reason code: `w=0` the close alert (bad
/// record type/length, MAC or padding damage — what link-layer
/// corruption draws), `w=1` the unsupported-suite alert, `w=2` the
/// bad-Finished alert (wrong credential).
pub const ALERT_KIND_LABELS: [&str; 3] = ["close", "suite", "finished"];

/// Result of one multi-client secure serving session.
#[derive(Debug)]
pub struct SecureRun {
    /// Per-client observations, in `clients` order.
    pub outcomes: Vec<ClientOutcome>,
    /// Per-handle guest counters, read back from the C globals.
    pub conns: Vec<ConnCounters>,
    /// Guest alerts by reason code, read back from the C `alert_kind`
    /// array (see [`ALERT_KIND_LABELS`]).
    pub alert_kinds: [u16; 3],
    /// Guest `naccepts` counter.
    pub accepts: u16,
    /// Guest `nopen` counter — 0 after an orderly teardown.
    pub open: u16,
    /// Guest cycles consumed (including halted idle cycles).
    pub cycles: u64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Final virtual time of the shared world, in microseconds.
    pub virtual_us: u64,
    /// Serial console output (`S<open-handles>\n` probe answers).
    pub serial_tx: Vec<u8>,
    /// Deterministic text snapshot of the world telemetry, including the
    /// `issl.guest.*` counters this driver publishes.
    pub snapshot: String,
    /// Root code size of the compiled firmware, in bytes.
    pub code_size: usize,
    /// Total bytes echoed back across all clients.
    pub echoed_bytes: u64,
    /// Cycle attribution by symbol, when profiling was requested.
    pub profile: Option<ProfileReport>,
}

pub(crate) enum Mode {
    Secure {
        machine: Box<SessionMachine>,
        tamper: Tamper,
        tampered: bool,
        next_msg: usize,
        sent: usize,
        closing: bool,
        closed: bool,
    },
    Plain {
        next_msg: usize,
        sent: usize,
        closed: bool,
    },
    Raw {
        payload: Vec<u8>,
        sent: bool,
        closed: bool,
    },
    HangUp {
        payload: Vec<u8>,
        sent: bool,
    },
}

pub(crate) struct Cs {
    pub(crate) mode: Mode,
    pub(crate) msgs: Vec<Vec<u8>>,
    pub(crate) expected: usize,
    pub(crate) out: ClientOutcome,
    pub(crate) fin: bool,
    pub(crate) reset: bool,
    pub(crate) done: bool,
}

/// Whether `rx` starts with one complete record.
fn record_complete(rx: &[u8]) -> bool {
    rx.len() >= recmap::HEADER_LEN
        && rx.len() >= recmap::HEADER_LEN + usize::from(u16::from_be_bytes([rx[1], rx[2]]))
}

pub(crate) fn step_client(host: &mut SimHost, conn: SocketId, st: &mut Cs) {
    // Drain the TCP receive buffer first; probe for the guest's FIN when
    // it is empty.
    let avail = host.available(conn);
    if avail > 0 {
        let mut buf = vec![0u8; avail];
        if let Recv::Data(n) = host.recv(conn, &mut buf) {
            buf.truncate(n);
            st.out.raw_rx.extend_from_slice(&buf);
            match &mut st.mode {
                Mode::Secure { machine, .. } => {
                    if machine.error().is_none() {
                        if let Err(e) = machine.feed(&buf) {
                            st.out.error = Some(format!("{e:?}"));
                        }
                    }
                }
                Mode::Plain { .. } => st.out.echoed.extend_from_slice(&buf),
                Mode::Raw { .. } | Mode::HangUp { .. } => {}
            }
        }
    } else {
        match host.recv(conn, &mut [0u8; 1]) {
            Recv::Closed => st.fin = true,
            Recv::Reset => {
                st.fin = true;
                st.reset = true;
            }
            _ => {}
        }
    }

    match &mut st.mode {
        Mode::Secure {
            machine,
            tamper,
            tampered,
            next_msg,
            sent,
            closing,
            closed,
        } => {
            if let Some(e) = machine.error() {
                if st.out.error.is_none() {
                    st.out.error = Some(format!("{e:?}"));
                }
            }
            st.out.established |= machine.is_established();
            st.out.peer_closed |= machine.is_peer_closed();
            let pt = machine.take_plaintext();
            if !pt.is_empty() {
                st.out.echoed.extend_from_slice(&pt);
            }

            let healthy =
                machine.is_established() && st.out.error.is_none() && !machine.is_peer_closed();
            if healthy && *tamper == Tamper::TruncateAfterHeader {
                if !*tampered {
                    // A data-record header promising one byte, then FIN.
                    host.send(conn, &[recmap::REC_DATA, 0, 1]);
                    host.close(conn);
                    *tampered = true;
                    *closed = true;
                }
            } else if healthy {
                if *next_msg < st.msgs.len() && st.out.echoed.len() == *sent {
                    let msg = st.msgs[*next_msg].clone();
                    if machine.write(&msg).is_ok() {
                        *sent += msg.len();
                    }
                    *next_msg += 1;
                } else if *tamper == Tamper::None
                    && !*closing
                    && *next_msg == st.msgs.len()
                    && st.out.echoed.len() == st.expected
                {
                    let _ = machine.close();
                    *closing = true;
                }
            }

            // Flush queued records (the ClientHello is queued before the
            // TCP handshake even completes).
            if machine.has_output() && !*closed && host.established(conn) {
                let mut out = machine.take_output();
                if *tamper == Tamper::FlipDataMac
                    && !*tampered
                    && out.first() == Some(&recmap::REC_DATA)
                {
                    if let Some(last) = out.last_mut() {
                        *last ^= 0x01;
                    }
                    *tampered = true;
                }
                let n = host.send(conn, &out);
                assert_eq!(n, out.len(), "client send fits the TCP buffer");
            }

            if *closing && !*closed && !machine.has_output() {
                host.close(conn);
                *closed = true;
            }

            // A FIN/RST before the session ran its course (the balancer
            // aborted a stalled session, or the backend died) terminates
            // the client with a recorded error; a clean run sets `closed`
            // or `peer_closed` before the FIN is ever observed.
            if st.fin && !*closed && !st.out.peer_closed && st.out.error.is_none() {
                st.out.error = Some(if st.reset { "Reset" } else { "EarlyClose" }.to_string());
            }
            st.done = match tamper {
                Tamper::None => {
                    *closed || st.out.error.is_some() || st.out.peer_closed || st.fin
                }
                Tamper::FlipDataMac => {
                    *tampered && (st.out.peer_closed || st.out.error.is_some() || st.fin)
                }
                Tamper::TruncateAfterHeader => *tampered && (st.out.peer_closed || st.fin),
            };
        }
        Mode::Plain {
            next_msg,
            sent,
            closed,
        } => {
            st.out.established |= host.established(conn);
            if *next_msg < st.msgs.len() && st.out.echoed.len() == *sent && host.established(conn)
            {
                let msg = &st.msgs[*next_msg];
                assert_eq!(host.send(conn, msg), msg.len(), "client send fits");
                *sent += msg.len();
                *next_msg += 1;
            }
            if st.out.echoed.len() == st.expected && !*closed {
                host.close(conn);
                *closed = true;
            }
            if st.fin && !*closed {
                // The echo never completed and the server side is gone
                // (stall abort or backend death): stop, with the cause.
                if st.out.error.is_none() {
                    st.out.error =
                        Some(if st.reset { "Reset" } else { "EarlyClose" }.to_string());
                }
                st.done = true;
            } else {
                st.done = *closed;
            }
        }
        Mode::Raw {
            payload,
            sent,
            closed,
        } => {
            st.out.established |= host.established(conn);
            if !*sent && host.established(conn) {
                let n = host.send(conn, payload);
                assert_eq!(n, payload.len(), "raw send fits");
                *sent = true;
            }
            st.done = *sent && (record_complete(&st.out.raw_rx) || st.fin);
            if st.done && !*closed {
                host.close(conn);
                *closed = true;
            }
        }
        Mode::HangUp { payload, sent } => {
            st.out.established |= host.established(conn);
            if !*sent && host.established(conn) {
                let n = host.send(conn, payload);
                assert_eq!(n, payload.len(), "hang-up send fits");
                *sent = true;
                // Disconnect mid-exchange: FIN right behind the payload.
                host.close(conn);
            }
            st.done = *sent && st.fin;
        }
    }

    if st.done {
        host.close(conn); // idempotent
    }
}

/// Builds the per-client driver state for `clients`, in order. The PRNG
/// seed depends only on the client index, so the same workload produces
/// the same ClientHello bytes in every driver ([`secure_serve`] and the
/// fleet driver share this).
pub(crate) fn client_states(clients: &[GuestClient]) -> Vec<Cs> {
    clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let (mode, msgs) = match c {
                GuestClient::Secure {
                    messages,
                    psk,
                    tamper,
                } => {
                    let config = ClientConfig {
                        suite: CipherSuite::AES128,
                        kx: ClientKx::PreShared(psk.clone()),
                    };
                    let machine = SessionMachine::client(config, Prng::new(0xC0DE + i as u64));
                    (
                        Mode::Secure {
                            machine: Box::new(machine),
                            tamper: *tamper,
                            tampered: false,
                            next_msg: 0,
                            sent: 0,
                            closing: false,
                            closed: false,
                        },
                        messages.clone(),
                    )
                }
                GuestClient::Plain { messages } => (
                    Mode::Plain {
                        next_msg: 0,
                        sent: 0,
                        closed: false,
                    },
                    messages.clone(),
                ),
                GuestClient::Raw { payload } => (
                    Mode::Raw {
                        payload: payload.clone(),
                        sent: false,
                        closed: false,
                    },
                    Vec::new(),
                ),
                GuestClient::HangUp { payload } => (
                    Mode::HangUp {
                        payload: payload.clone(),
                        sent: false,
                    },
                    Vec::new(),
                ),
            };
            Cs {
                expected: msgs.iter().map(Vec::len).sum(),
                mode,
                msgs,
                out: ClientOutcome::default(),
                fin: false,
                reset: false,
                done: false,
            }
        })
        .collect()
}

/// Runs the compiled-C secure server against `clients.len()` concurrent
/// host-side clients; `psk` is the credential poked into the board's C
/// globals before boot. Mirrors [`crate::serve::serve_clients`]: console
/// probes are injected only against a halted CPU, so every observable is
/// a deterministic function of the workload — identical on both engines.
///
/// # Panics
///
/// If `psk` exceeds the guest's 64-byte key buffer, the firmware faults,
/// or the session does not converge.
pub fn secure_serve(
    engine: Engine,
    opts: dcc::Options,
    psk: &[u8],
    clients: &[GuestClient],
    probe_gap_us: Option<u64>,
    profile: bool,
) -> SecureRun {
    assert!(psk.len() <= 64, "guest PSK buffer is 64 bytes");
    let build = build_secure_firmware(opts);

    let world = Rc::new(RefCell::new(World::new(42)));
    let mut fleet = crate::fleet::Fleet::new(&world);
    let b = fleet.add_solo_board(engine, "rmc2000", Ipv4::new(10, 0, 0, 1));
    let board_ip = fleet.ip(b);
    let board_id = fleet.host(b).id();
    let mut hosts: Vec<SimHost> = (0..clients.len())
        .map(|i| {
            let ip = Ipv4::new(10, 0, 0, 2 + u8::try_from(i).expect("few clients"));
            let host = SimHost::attach(&world, "client", ip);
            world
                .borrow_mut()
                .link(board_id, host.id(), LinkParams::ethernet_10base_t());
            host
        })
        .collect();

    let board = fleet.board_mut(b);
    board.load(&build.image);
    board.set_pc(dcc::layout::CODE_ORG);
    if profile {
        board.cpu.enable_profiler();
    }

    // Poke the credential into the guest's C globals: root data lives in
    // SRAM, and `Memory::load` models the kit's programming port.
    let psk_phys = build.symbol_phys("_psk").expect("C global `psk`");
    board.mem.load(psk_phys, psk);
    let psklen_phys = build.symbol_phys("_psklen").expect("C global `psklen`");
    board
        .mem
        .load(psklen_phys, &(psk.len() as u16).to_le_bytes());

    // Boot: main seeds the PRNG, configures serial + NIC, parks in idle().
    assert_eq!(board.run(200_000), RunOutcome::Halted, "firmware boots");

    let conns: Vec<SocketId> = hosts
        .iter_mut()
        .map(|h| h.connect(Endpoint::new(board_ip, SECURE_PORT)))
        .collect();

    let mut state: Vec<Cs> = client_states(clients);

    const RUN_CHUNK: u64 = 2_000;
    const IDLE_CHUNK: u64 = 100 * crate::nic::CYCLES_PER_US;
    const MAX_CYCLES: u64 = 800_000_000;

    let mut next_probe_us = probe_gap_us.unwrap_or(0);

    while state.iter().any(|s| !s.done) {
        assert!(
            fleet.board(b).cpu.cycles < MAX_CYCLES,
            "secure serve session did not converge"
        );
        fleet.solo_pump(RUN_CHUNK, IDLE_CHUNK, |board| {
            if let Some(gap) = probe_gap_us {
                if world.borrow().now() >= next_probe_us {
                    board.serial_mut().inject(SERIAL_PROBE);
                    next_probe_us = world.borrow().now() + gap;
                }
            }
        });
        for ((host, &conn), st) in hosts.iter_mut().zip(&conns).zip(state.iter_mut()) {
            if !st.done {
                step_client(host, conn, st);
            }
        }
    }

    // Orderly teardown: the guest observes the FINs and frees its handles.
    for _ in 0..40 {
        fleet.solo_settle(RUN_CHUNK, IDLE_CHUNK);
    }
    let board = fleet.board_mut(b);

    let read_arr = |name: &str, idx: usize| -> u16 {
        let phys = build.symbol_phys(name).expect("C global exists") + 2 * idx as u32;
        u16::from_le_bytes([board.mem.read_phys(phys), board.mem.read_phys(phys + 1)])
    };
    let conn_counters: Vec<ConnCounters> = (0..MAX_CONNS)
        .map(|h| ConnCounters {
            handshakes: read_arr("_hs_ok", h),
            records_in: read_arr("_rec_in", h),
            records_out: read_arr("_rec_out", h),
            alerts: read_arr("_alerts", h),
        })
        .collect();
    let accepts = read_arr("_naccepts", 0);
    let open = read_arr("_nopen", 0);
    let alert_kinds = [
        read_arr("_alert_kind", 0),
        read_arr("_alert_kind", 1),
        read_arr("_alert_kind", 2),
    ];

    // Publish the guest's counters into the shared registry so the
    // snapshot carries handshake/record/alert counts per handle.
    {
        let w = world.borrow();
        let reg = w.telemetry();
        for (h, c) in conn_counters.iter().enumerate() {
            let hl = h.to_string();
            let labels = [("conn", hl.as_str())];
            for (name, v) in [
                ("issl.guest.handshakes", u64::from(c.handshakes)),
                ("issl.guest.records.in", u64::from(c.records_in)),
                ("issl.guest.records.out", u64::from(c.records_out)),
                ("issl.guest.alerts", u64::from(c.alerts)),
            ] {
                let counter = reg.counter(name, &labels);
                // A single-board run is board 0 of a one-board fleet: the
                // namespaced key shares the legacy counter's cell.
                reg.alias_counter(&format!("board0.{name}"), &labels, &counter);
                counter.add(v);
            }
        }
        for (kind, &v) in ALERT_KIND_LABELS.iter().zip(&alert_kinds) {
            let labels = [("kind", *kind)];
            let counter = reg.counter("issl.guest.alerts.kind", &labels);
            reg.alias_counter("board0.issl.guest.alerts.kind", &labels, &counter);
            counter.add(u64::from(v));
        }
    }

    let profile_report = board.cpu.take_profiler().map(|p| {
        // Drop `dcc`'s generated branch labels (`L<n>_...`): they would
        // fragment each C function's cycles across its basic blocks.
        // Everything else stays — `_name` C functions and runtime
        // helpers, and the AES module's named internals (`encrypt`,
        // `subshift`, ...), so nearest-label-below resolution folds
        // blocks into functions without hiding where the assembly
        // spends its time.
        let local = |n: &str| {
            n.strip_prefix('L')
                .and_then(|r| r.chars().next())
                .is_some_and(|c| c.is_ascii_digit())
        };
        let syms = SymbolTable::from_pairs(
            build
                .image
                .symbols
                .iter()
                .filter(|(n, _)| !local(n))
                .map(|(n, &a)| (n.as_str(), a)),
        );
        p.report(&syms)
    });

    let snapshot = world.borrow().telemetry().snapshot().to_text();
    let virtual_us = world.borrow().now();
    let echoed_bytes = state.iter().map(|s| s.out.echoed.len() as u64).sum();
    SecureRun {
        outcomes: state.into_iter().map(|s| s.out).collect(),
        conns: conn_counters,
        alert_kinds,
        accepts,
        open,
        cycles: board.cpu.cycles,
        instructions: board.cpu.instructions,
        virtual_us,
        serial_tx: board.serial().transmitted().to_vec(),
        snapshot,
        code_size: build.code_size(),
        echoed_bytes,
        profile: profile_report,
    }
}

// ---------------------------------------------------------------------------
// Differential tests: the guest's 16-bit crypto vs the host reference
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// The crypto half under a bare test `main`: mode 0 hashes
    /// `hbuf[0..hlen]`, mode 1 HMACs `hmsg` under `hkey`, mode 2 runs
    /// the KDF for session 0 from `psk` and `tbuf`.
    fn crypto_test_source() -> String {
        format!(
            "{}\nint mode;\n\
             int main() {{\n\
                 if (mode == 0) sha1_run();\n\
                 if (mode == 1) hmac_run();\n\
                 if (mode == 2) kdf_run(0);\n\
                 return 0;\n\
             }}\n",
            crypto_c()
        )
    }

    fn run_crypto(
        pokes: &[(&str, Vec<u8>)],
        mode: u16,
        reads: &[(&str, usize)],
    ) -> Vec<Vec<u8>> {
        let build = dcc::build(&crypto_test_source(), dcc::Options::all_optimizations())
            .expect("crypto C compiles");
        let (mut cpu, mut mem) = build.machine();
        for (name, bytes) in pokes {
            build.write_bytes(&mut mem, name, bytes);
        }
        build.write_bytes(&mut mem, "_mode", &mode.to_le_bytes());
        build
            .run_prepared(&mut cpu, &mut mem, 400_000_000)
            .expect("crypto C halts");
        reads
            .iter()
            .map(|(name, len)| build.read_bytes(&mem, name, *len))
            .collect()
    }

    #[test]
    fn guest_sha1_matches_reference() {
        for (case, len) in [0usize, 1, 55, 56, 64, 129].into_iter().enumerate() {
            let data: Vec<u8> = (0..len)
                .map(|k| (k as u8).wrapping_mul(31).wrapping_add(case as u8 * 7 + 5))
                .collect();
            let out = run_crypto(
                &[
                    ("_hbuf", data.clone()),
                    ("_hlen", (len as u16).to_le_bytes().to_vec()),
                ],
                0,
                &[("_dig", 20)],
            );
            assert_eq!(out[0], crypto::sha1(&data).to_vec(), "len {len}");
        }
    }

    #[test]
    fn guest_hmac_matches_reference() {
        for (klen, mlen) in [(20usize, 13usize), (64, 0), (5, 100), (32, 64)] {
            let key: Vec<u8> = (0..klen).map(|k| (k as u8).wrapping_mul(17).wrapping_add(3)).collect();
            let msg: Vec<u8> = (0..mlen).map(|k| (k as u8).wrapping_mul(7).wrapping_add(11)).collect();
            let out = run_crypto(
                &[
                    ("_hkey", key.clone()),
                    ("_hklen", (klen as u16).to_le_bytes().to_vec()),
                    ("_hmsg", msg.clone()),
                    ("_hmlen", (mlen as u16).to_le_bytes().to_vec()),
                ],
                1,
                &[("_dig", 20)],
            );
            assert_eq!(
                out[0],
                crypto::hmac_sha1(&key, &msg).to_vec(),
                "klen {klen} mlen {mlen}"
            );
        }
    }

    #[test]
    fn guest_kdf_matches_reference() {
        let psk = b"rmc2000 shared secret";
        // Transcript slot 0: ClientHello body (18) then ServerHello body (22).
        let tbuf: Vec<u8> = (0..40u8).map(|k| k.wrapping_mul(13).wrapping_add(1)).collect();
        let cn = &tbuf[2..18];
        let sn = &tbuf[20..36];
        let out = run_crypto(
            &[
                ("_psk", psk.to_vec()),
                ("_psklen", (psk.len() as u16).to_le_bytes().to_vec()),
                ("_tbuf", tbuf.clone()),
            ],
            2,
            &[("_ckey", 16), ("_skey", 16), ("_cmac", 20), ("_smac", 20)],
        );
        let keys = issl::kdf::derive_session_keys(psk, cn, sn, 16);
        assert_eq!(out[0], keys.client_write_key, "client write key");
        assert_eq!(out[1], keys.server_write_key, "server write key");
        assert_eq!(out[2], keys.client_mac_key, "client MAC key");
        assert_eq!(out[3], keys.server_mac_key, "server MAC key");
    }

    #[test]
    fn secure_firmware_compiles_and_links_under_both_option_sets() {
        for opts in [dcc::Options::baseline(), dcc::Options::all_optimizations()] {
            let build = build_secure_firmware(opts);
            for sym in ["_nic_isr", "_ser_isr", "_sha1_run", "_aes_enc", "_aes_dec"] {
                assert!(build.symbol_phys(sym).is_some(), "symbol {sym}");
            }
            assert!(
                build
                    .image
                    .sections
                    .iter()
                    .any(|s| s.addr == NIC_VECTOR && s.bytes[0] == 0xC3),
                "NIC vector holds a jp"
            );
        }
    }

    #[test]
    fn serves_one_secure_client_end_to_end() {
        let psk = b"paper psk";
        let r = secure_serve(
            Engine::Interpreter,
            dcc::Options::all_optimizations(),
            psk,
            &[GuestClient::secure(&[b"secure echo!"], psk)],
            None,
            false,
        );
        assert_eq!(r.outcomes[0].echoed, b"secure echo!".to_vec());
        assert!(r.outcomes[0].established);
        assert_eq!(r.outcomes[0].error, None);
        assert_eq!(r.conns[0].handshakes, 1);
        assert_eq!(r.conns[0].records_in, 1);
        assert_eq!(r.conns[0].records_out, 1);
        assert_eq!(r.conns[0].alerts, 0);
        assert_eq!(r.accepts, 1);
        assert_eq!(r.open, 0, "teardown closed the handle");
        assert!(r.snapshot.contains("issl.guest.handshakes"));
    }
}
