//! The assembled board: a Rabbit 2000 CPU, 512 KiB flash + 128 KiB SRAM,
//! a device bus carrying serial port A, a free-running real-time clock,
//! and (optionally) the NIC, plus the `defineErrorHandler` dispatch of
//! the paper's §4.1.

use std::any::Any;

use dynamicc::{Disposition, ErrorHandler, ErrorInfo, ErrorKind};
use rabbit::io::ports;
use rabbit::{Bus, Cpu, Device, DeviceId, Engine, Fault, Image, IoSpace, Memory, PortRange};
use telemetry::Counter;

use crate::nic::Nic;
use crate::serial::SerialPort;

/// The free-running real-time clock: a cycle counter latched into the
/// `RTC0..RTC5` registers when `RTC0` is read.
#[derive(Debug, Default)]
pub struct Rtc {
    /// Cycles elapsed since power-up.
    pub cycles: u64,
    latch: u64,
}

impl Device for Rtc {
    fn name(&self) -> &'static str {
        "rtc"
    }

    fn claims(&self) -> Vec<PortRange> {
        vec![PortRange::internal(ports::RTC0, ports::RTC0 + 5)]
    }

    fn read(&mut self, port: u16, _external: bool) -> u8 {
        if port == ports::RTC0 {
            self.latch = self.cycles;
        }
        (self.latch >> (8 * (port - ports::RTC0))) as u8
    }

    fn write(&mut self, _port: u16, _value: u8, _external: bool) {
        // Read-only in this model.
    }

    fn tick(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    // No `next_deadline`: the RTC is a free-running counter with no
    // interrupts, observable only through a port read that latches it.
    // Its additive tick makes every intermediate count unobservable, so
    // it never bounds the event horizon.

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The `board.*` telemetry counters the idle scheduler maintains.
#[derive(Debug, Clone)]
pub struct BoardCounters {
    /// Halted cycles consumed while idling (batched or stepwise).
    pub idle_cycles: Counter,
    /// Event-horizon batches the fast-forward path took.
    pub skip_batches: Counter,
}

impl BoardCounters {
    /// Registers the counters in `registry` under the single-board names
    /// (`board.*`), aliased as `board0.board.*` — historical snapshots
    /// keep their keys, fleet tooling addresses the same cells
    /// uniformly. Idempotent: fetches the existing cells on a second
    /// call.
    pub fn register(registry: &telemetry::Registry) -> BoardCounters {
        let c = BoardCounters {
            idle_cycles: registry.counter("board.idle_cycles", &[]),
            skip_batches: registry.counter("board.skip_batches", &[]),
        };
        let _ = registry.alias_counter("board0.board.idle_cycles", &[], &c.idle_cycles);
        let _ = registry.alias_counter("board0.board.skip_batches", &[], &c.skip_batches);
        c
    }

    /// Registers the counters under board-namespaced names only
    /// (`board<idx>.board.*`) — the fleet form, where several boards
    /// share one registry.
    pub fn register_board(registry: &telemetry::Registry, idx: usize) -> BoardCounters {
        BoardCounters {
            idle_cycles: registry.counter(&format!("board{idx}.board.idle_cycles"), &[]),
            skip_batches: registry.counter(&format!("board{idx}.board.skip_batches"), &[]),
        }
    }

    /// Free-standing counters, not attached to any registry.
    pub fn detached() -> BoardCounters {
        BoardCounters {
            idle_cycles: Counter::new(),
            skip_batches: Counter::new(),
        }
    }
}

/// Outcome of running firmware for a while.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// CPU reached `halt` with no interrupt pending.
    Halted,
    /// The cycle budget was used up.
    BudgetExhausted,
    /// A fault was raised and the error handler said stop.
    HandlerHalt,
    /// A fault was raised and the error handler asked for a reset.
    HandlerReset,
}

/// The RMC2000 board.
pub struct Board {
    /// The CPU.
    pub cpu: Cpu,
    /// Flash + SRAM.
    pub mem: Memory,
    /// The device bus (serial port A, RTC, optionally the NIC).
    pub bus: Bus,
    /// The registered error handler (`defineErrorHandler`).
    pub errors: ErrorHandler,
    /// Number of resets performed by the error handler.
    pub resets: u64,
    /// Execution engine [`Board::run`] dispatches to.
    pub engine: Engine,
    /// Idle-scheduler telemetry (`board.idle_cycles`, `board.skip_batches`).
    pub counters: BoardCounters,
    serial_id: DeviceId,
    rtc_id: DeviceId,
    nic_id: Option<DeviceId>,
}

impl Board {
    /// A powered-up board with the standard firmware memory map (data
    /// segment at 0x8000 → SRAM, stack segment backed by SRAM).
    pub fn new() -> Board {
        Board::with_engine(Engine::BlockCache)
    }

    /// A board whose [`Board::run`] uses the given execution engine.
    pub fn with_engine(engine: Engine) -> Board {
        let mut cpu = Cpu::new();
        cpu.mmu.segsize = rabbit::fwmap::SEGSIZE_RESET;
        cpu.mmu.dataseg = rabbit::fwmap::DATASEG_PAGE;
        cpu.mmu.stackseg = rabbit::fwmap::STACKSEG_PAGE;
        cpu.regs.sp = rabbit::fwmap::SP_RESET;
        let mut bus = Bus::new();
        let serial_id = bus.attach(Box::new(SerialPort::new()));
        let rtc_id = bus.attach(Box::new(Rtc::default()));
        Board {
            cpu,
            mem: Memory::new(),
            bus,
            errors: ErrorHandler::new(),
            resets: 0,
            engine,
            counters: BoardCounters::detached(),
            serial_id,
            rtc_id,
            nic_id: None,
        }
    }

    /// Rebinds the board's `board.*` counters into `registry`, so one
    /// snapshot covers the guest-side scheduler next to the `net.*`
    /// counters. Values accumulated so far in the detached cells are not
    /// carried over; bind before running.
    pub fn bind_telemetry(&mut self, registry: &telemetry::Registry) {
        self.counters = BoardCounters::register(registry);
    }

    /// As [`Board::bind_telemetry`], but under fleet-namespaced names
    /// (`board<idx>.board.*`) so boards sharing one registry never
    /// collide.
    pub fn bind_telemetry_board(&mut self, registry: &telemetry::Registry, idx: usize) {
        self.counters = BoardCounters::register_board(registry, idx);
    }

    /// Plugs a NIC into the bus (at most one).
    ///
    /// # Panics
    ///
    /// If a NIC is already attached.
    pub fn attach_nic(&mut self, nic: Nic) {
        assert!(self.nic_id.is_none(), "NIC already attached");
        self.nic_id = Some(self.bus.attach(Box::new(nic)));
    }

    /// Serial port A.
    pub fn serial(&self) -> &SerialPort {
        self.bus.device(self.serial_id)
    }

    /// Serial port A, mutably (host side: inject characters, read the
    /// transmit capture).
    pub fn serial_mut(&mut self) -> &mut SerialPort {
        self.bus.device_mut(self.serial_id)
    }

    /// The real-time clock.
    pub fn rtc(&self) -> &Rtc {
        self.bus.device(self.rtc_id)
    }

    /// The NIC, when one is attached.
    pub fn nic(&self) -> Option<&Nic> {
        self.nic_id.map(|id| self.bus.device(id))
    }

    /// The NIC, mutably, when one is attached.
    pub fn nic_mut(&mut self) -> Option<&mut Nic> {
        match self.nic_id {
            Some(id) => Some(self.bus.device_mut(id)),
            None => None,
        }
    }

    /// Loads an assembled image through the programming port, honouring
    /// the firmware memory map (root code below 0x8000 goes to flash,
    /// data at 0x8000+ to SRAM, xmem-window sections to their page).
    pub fn load(&mut self, image: &Image) {
        for s in &image.sections {
            self.mem.load(crate::load_phys(s.addr), &s.bytes);
        }
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u16) {
        self.cpu.regs.pc = pc;
        self.cpu.halted = false;
    }

    /// Executes one instruction, routing faults through the registered
    /// error handler exactly as the hardware routes them through
    /// `defineErrorHandler`.
    pub fn step(&mut self) -> Option<RunOutcome> {
        match self.cpu.step(&mut self.mem, &mut self.bus) {
            Ok(_) => None,
            Err(fault) => self.route_fault(fault),
        }
    }

    fn route_fault(&mut self, fault: Fault) -> Option<RunOutcome> {
        let Fault::InvalidOpcode { pc, opcode } = fault;
        let info = ErrorInfo {
            kind: ErrorKind::InvalidOpcode,
            address: pc,
            aux: u16::from(opcode),
        };
        match self.errors.raise(info) {
            Disposition::Ignore => None, // skip and continue, as the paper's port did
            Disposition::Halt => Some(RunOutcome::HandlerHalt),
            Disposition::Reset => {
                self.reset();
                Some(RunOutcome::HandlerReset)
            }
        }
    }

    /// Soft reset: PC to 0, registers cleared, memory and peripherals
    /// retained (battery-backed `protected` state survives by design).
    pub fn reset(&mut self) {
        let mmu = self.cpu.mmu;
        self.cpu = Cpu::new();
        self.cpu.mmu = mmu;
        self.cpu.regs.sp = rabbit::fwmap::SP_RESET;
        self.resets += 1;
    }

    /// Runs until halt, fault-handler stop, or the cycle budget runs out.
    ///
    /// Execution goes through [`Board::engine`] (the block-caching engine
    /// by default); waiting in `halt` for an interrupt goes through the
    /// event-horizon scheduler ([`Board::halted_advance`]), which is
    /// engine-independent by construction.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let start = self.cpu.cycles;
        loop {
            if self.cpu.halted && self.bus.pending_interrupt().is_none() {
                return RunOutcome::Halted;
            }
            if self.cpu.cycles - start >= max_cycles {
                return RunOutcome::BudgetExhausted;
            }
            let left = max_cycles - (self.cpu.cycles - start);
            let outcome = if self.cpu.halted {
                // A pending request is either dispatched now or masked;
                // either way this cannot fault.
                self.halted_advance(left);
                None
            } else {
                match self
                    .cpu
                    .run_on(self.engine, &mut self.mem, &mut self.bus, left)
                {
                    Ok(_) => None,
                    Err(fault) => self.route_fault(fault),
                }
            };
            if let Some(outcome) = outcome {
                if outcome != RunOutcome::HandlerReset {
                    return outcome;
                }
            }
        }
    }

    /// Lets a halted CPU sleep for up to `max_cycles` while peripherals —
    /// and the NIC's netsim world — keep advancing, waking on the first
    /// dispatchable interrupt. Returns true when an interrupt woke the
    /// CPU.
    ///
    /// Time moves through the event-horizon scheduler: whole stretches of
    /// halted time are skipped in one batch per device deadline instead
    /// of 2 cycles at a time, with wake-up times, interrupt order, and
    /// telemetry byte-identical to the stepwise path
    /// ([`Board::idle_stepwise`] keeps that path as the oracle). The idle
    /// path never touches [`Board::engine`], so it is engine-independent
    /// by construction.
    pub fn idle(&mut self, max_cycles: u64) -> bool {
        let start = self.cpu.cycles;
        while self.cpu.halted && self.cpu.cycles - start < max_cycles {
            self.halted_advance(max_cycles - (self.cpu.cycles - start));
        }
        !self.cpu.halted
    }

    /// The pre-batching idle loop: burns halted time 2 cycles at a step
    /// through [`rabbit::Cpu::step`]. Kept as the reference
    /// implementation the differential tests compare [`Board::idle`]
    /// against — and as the measured "before" of the E12 experiment.
    pub fn idle_stepwise(&mut self, max_cycles: u64) -> bool {
        let start = self.cpu.cycles;
        while self.cpu.halted && self.cpu.cycles - start < max_cycles {
            // A halted step cannot fault: it either idles or dispatches.
            let cycles_before = self.cpu.cycles;
            let _ = self.cpu.step(&mut self.mem, &mut self.bus);
            if self.cpu.halted {
                self.counters
                    .idle_cycles
                    .add(self.cpu.cycles - cycles_before);
            }
        }
        !self.cpu.halted
    }

    /// One halted scheduling decision: dispatch a pending unmasked
    /// interrupt exactly as a stepwise halted [`rabbit::Cpu::step`]
    /// would, or fast-forward to the *event horizon* — the nearest
    /// [`rabbit::Device::next_deadline`] over the bus, capped by
    /// `budget` — in a single [`rabbit::Bus::advance`] batch.
    ///
    /// Equivalence with the stepwise path: a halted step burns 2 cycles
    /// and re-polls interrupts, so wake-ups can only happen at
    /// `start + 2k`; a device event `d` cycles away first becomes
    /// visible at the poll after `ceil(d / 2)` steps, which is exactly
    /// where the batch stops. Deadlines are lower bounds, so the batch
    /// never jumps past an interrupt raise; the bus still ticks devices
    /// through every intermediate poll boundary inside the batch, so
    /// device-side work (world advance, frame delivery) happens at the
    /// same virtual times as before.
    fn halted_advance(&mut self, budget: u64) {
        debug_assert!(self.cpu.halted, "halted_advance on a running CPU");
        debug_assert!(budget > 0, "halted_advance needs a budget");
        if let Some(req) = self.bus.pending_interrupt() {
            if req.priority & 3 > self.cpu.priority() {
                // Dispatch. A halted step cannot fault.
                let _ = self.cpu.step(&mut self.mem, &mut self.bus);
                return;
            }
        }
        // Nothing dispatchable (a masked request may stay pending): skip
        // whole halted steps at once.
        let mut steps = budget.div_ceil(2);
        if let Some(d) = self.bus.next_deadline() {
            steps = steps.min(d.div_ceil(2)).max(1);
        }
        let cycles = steps * 2;
        self.cpu.skip_halted(cycles);
        self.bus.advance(cycles);
        self.counters.idle_cycles.add(cycles);
        self.counters.skip_batches.inc();
    }

    /// Runs until the predicate on the board holds (checked between
    /// instructions) or the budget expires. Returns whether it held.
    ///
    /// Execution dispatches through [`Board::engine`] with a
    /// one-instruction budget — a budget below a block's worth of cycles
    /// retires exactly one instruction on either engine — so the
    /// predicate cadence, and therefore every predicate-visible state,
    /// is identical to the historical single-stepping implementation
    /// (transient predicates such as "PC is inside the ISR" still fire).
    pub fn run_until(&mut self, max_cycles: u64, mut pred: impl FnMut(&Board) -> bool) -> bool {
        let start = self.cpu.cycles;
        while self.cpu.cycles - start < max_cycles {
            if pred(self) {
                return true;
            }
            let outcome = if self.cpu.halted {
                // Halted wait: the stepwise wake-up cadence is the
                // predicate-visible contract; keep it.
                self.step()
            } else {
                match self.cpu.run_on(self.engine, &mut self.mem, &mut self.bus, 1) {
                    Ok(_) => None,
                    Err(fault) => self.route_fault(fault),
                }
            };
            if let Some(outcome) = outcome {
                if outcome != RunOutcome::HandlerReset {
                    return pred(self);
                }
            }
        }
        pred(self)
    }
}

impl Default for Board {
    fn default() -> Board {
        Board::new()
    }
}

impl std::fmt::Debug for Board {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Board")
            .field("cpu", &self.cpu.regs)
            .field("cycles", &self.cpu.cycles)
            .field("bus", &self.bus)
            .field("resets", &self.resets)
            .finish()
    }
}
