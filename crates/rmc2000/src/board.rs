//! The assembled board: a Rabbit 2000 CPU, 512 KiB flash + 128 KiB SRAM,
//! serial port A with interrupts, a free-running real-time clock, and the
//! `defineErrorHandler` dispatch of the paper's §4.1.

use dynamicc::{Disposition, ErrorHandler, ErrorInfo, ErrorKind};
use rabbit::io::ports;
use rabbit::{Cpu, Fault, Image, Interrupt, IoSpace, Memory};

use crate::serial::SerialPort;

/// The I/O complex of the board.
#[derive(Debug, Default)]
pub struct BoardIo {
    /// Serial port A.
    pub serial: SerialPort,
    /// Free-running clock (CPU cycles), latched into the RTC registers.
    pub rtc_cycles: u64,
    rtc_latch: u64,
    /// Raw writes to otherwise unmodelled ports (visible for tests).
    pub port_writes: Vec<(u16, u8)>,
}

impl IoSpace for BoardIo {
    fn io_read(&mut self, port: u16, _external: bool) -> u8 {
        if let Some(v) = self.serial.read(port) {
            return v;
        }
        match port {
            // RTC: reading RTC0 latches the count; RTC0..RTC5 expose it.
            ports::RTC0 => {
                self.rtc_latch = self.rtc_cycles;
                self.rtc_latch as u8
            }
            p if (ports::RTC0..ports::RTC0 + 6).contains(&p) => {
                (self.rtc_latch >> (8 * (p - ports::RTC0))) as u8
            }
            _ => 0xFF,
        }
    }

    fn io_write(&mut self, port: u16, value: u8, _external: bool) {
        if self.serial.write(port, value) {
            return;
        }
        self.port_writes.push((port, value));
    }

    fn pending_interrupt(&mut self) -> Option<Interrupt> {
        self.serial.pending()
    }

    fn acknowledge_interrupt(&mut self, _vector: u16) {
        self.serial.acknowledge();
    }

    fn tick(&mut self, cycles: u64) {
        self.rtc_cycles += cycles;
    }
}

/// Outcome of running firmware for a while.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// CPU reached `halt` with no interrupt pending.
    Halted,
    /// The cycle budget was used up.
    BudgetExhausted,
    /// A fault was raised and the error handler said stop.
    HandlerHalt,
    /// A fault was raised and the error handler asked for a reset.
    HandlerReset,
}

/// The RMC2000 board.
pub struct Board {
    /// The CPU.
    pub cpu: Cpu,
    /// Flash + SRAM.
    pub mem: Memory,
    /// Peripherals.
    pub io: BoardIo,
    /// The registered error handler (`defineErrorHandler`).
    pub errors: ErrorHandler,
    /// Number of resets performed by the error handler.
    pub resets: u64,
}

impl Board {
    /// A powered-up board with the standard firmware memory map (data
    /// segment at 0x8000 → SRAM, stack segment backed by SRAM).
    pub fn new() -> Board {
        let mut cpu = Cpu::new();
        cpu.mmu.segsize = 0xD8;
        cpu.mmu.dataseg = 0x78;
        cpu.mmu.stackseg = 0x78;
        cpu.regs.sp = 0xDFF0;
        Board {
            cpu,
            mem: Memory::new(),
            io: BoardIo::default(),
            errors: ErrorHandler::new(),
            resets: 0,
        }
    }

    /// Loads an assembled image through the programming port, honouring
    /// the firmware memory map (root code below 0x8000 goes to flash,
    /// data at 0x8000+ to SRAM, xmem-window sections to their page).
    pub fn load(&mut self, image: &Image) {
        for s in &image.sections {
            self.mem.load(crate::load_phys(s.addr), &s.bytes);
        }
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u16) {
        self.cpu.regs.pc = pc;
        self.cpu.halted = false;
    }

    /// Executes one instruction, routing faults through the registered
    /// error handler exactly as the hardware routes them through
    /// `defineErrorHandler`.
    pub fn step(&mut self) -> Option<RunOutcome> {
        match self.cpu.step(&mut self.mem, &mut self.io) {
            Ok(_) => None,
            Err(fault) => self.route_fault(fault),
        }
    }

    fn route_fault(&mut self, fault: Fault) -> Option<RunOutcome> {
        let Fault::InvalidOpcode { pc, opcode } = fault;
        let info = ErrorInfo {
            kind: ErrorKind::InvalidOpcode,
            address: pc,
            aux: u16::from(opcode),
        };
        match self.errors.raise(info) {
            Disposition::Ignore => None, // skip and continue, as the paper's port did
            Disposition::Halt => Some(RunOutcome::HandlerHalt),
            Disposition::Reset => {
                self.reset();
                Some(RunOutcome::HandlerReset)
            }
        }
    }

    /// Soft reset: PC to 0, registers cleared, memory and peripherals
    /// retained (battery-backed `protected` state survives by design).
    pub fn reset(&mut self) {
        let mmu = self.cpu.mmu;
        self.cpu = Cpu::new();
        self.cpu.mmu = mmu;
        self.cpu.regs.sp = 0xDFF0;
        self.resets += 1;
    }

    /// Runs until halt, fault-handler stop, or the cycle budget runs out.
    ///
    /// Execution goes through the block-caching engine
    /// ([`Cpu::run_fast`]); waiting in `halt` for an interrupt falls back
    /// to single-stepping so wake-up priority checks behave exactly as
    /// before.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let start = self.cpu.cycles;
        loop {
            if self.cpu.halted && self.io.pending_interrupt().is_none() {
                return RunOutcome::Halted;
            }
            if self.cpu.cycles - start >= max_cycles {
                return RunOutcome::BudgetExhausted;
            }
            let outcome = if self.cpu.halted {
                self.step()
            } else {
                let left = max_cycles - (self.cpu.cycles - start);
                match self.cpu.run_fast(&mut self.mem, &mut self.io, left) {
                    Ok(_) => None,
                    Err(fault) => self.route_fault(fault),
                }
            };
            if let Some(outcome) = outcome {
                if outcome != RunOutcome::HandlerReset {
                    return outcome;
                }
            }
        }
    }

    /// Runs until the predicate on the board holds (checked between
    /// instructions) or the budget expires. Returns whether it held.
    pub fn run_until(&mut self, max_cycles: u64, mut pred: impl FnMut(&Board) -> bool) -> bool {
        let start = self.cpu.cycles;
        while self.cpu.cycles - start < max_cycles {
            if pred(self) {
                return true;
            }
            if let Some(outcome) = self.step() {
                if outcome != RunOutcome::HandlerReset {
                    return pred(self);
                }
            }
        }
        pred(self)
    }
}

impl Default for Board {
    fn default() -> Board {
        Board::new()
    }
}

impl std::fmt::Debug for Board {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Board")
            .field("cpu", &self.cpu.regs)
            .field("cycles", &self.cpu.cycles)
            .field("resets", &self.resets)
            .finish()
    }
}
