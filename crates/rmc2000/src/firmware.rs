//! Guest firmware building blocks for the NIC: assembly shims
//! (`nic_accept`, `nic_close`, `nic_send`, `nic_recv`), an interrupt
//! service routine, and the reference echo-server firmware the
//! end-to-end tests assemble.
//!
//! The shims are the assembly the paper's Dynamic C library calls would
//! compile to: explicit `ioe`-prefixed loads and stores against the NIC's
//! register bank and packet windows (see [`crate::nic`] for the map).
//! The `dcc` compiler emits the same sequences for its `nic_*`
//! intrinsics, from the same [`rabbit::nicmap`] constants.

use crate::nic::{
    CMD_ACCEPT, CMD_CLOSE, CMD_LISTEN, CMD_RX_NEXT, CMD_TX_GO, NIC_CMD, NIC_CONN, NIC_IER,
    NIC_LPORT_HI, NIC_LPORT_LO, NIC_RXLEN_HI, NIC_RXLEN_LO, NIC_RX_WINDOW, NIC_STATUS,
    NIC_TXLEN_HI, NIC_TXLEN_LO, NIC_TX_WINDOW, NIC_VECTOR, STATUS_ACCEPT_READY,
    STATUS_PEER_CLOSED, STATUS_RX_AVAIL, STATUS_TX_READY,
};

/// Default scratch buffer the echo ISR bounces frames through (root
/// data segment → SRAM).
pub const ECHO_BUF: u16 = 0x9000;

/// `equ` definitions for the NIC register map, shared by every shim.
pub fn nic_equates() -> String {
    format!(
        "NICCMD  equ {NIC_CMD:#06x}\n\
         NICST   equ {NIC_STATUS:#06x}\n\
         NICIER  equ {NIC_IER:#06x}\n\
         NICRXL  equ {NIC_RXLEN_LO:#06x}\n\
         NICRXH  equ {NIC_RXLEN_HI:#06x}\n\
         NICTXL  equ {NIC_TXLEN_LO:#06x}\n\
         NICTXH  equ {NIC_TXLEN_HI:#06x}\n\
         NICPRTL equ {NIC_LPORT_LO:#06x}\n\
         NICPRTH equ {NIC_LPORT_HI:#06x}\n\
         NICCONN equ {NIC_CONN:#06x}\n\
         NICRXW  equ {NIC_RX_WINDOW:#06x}\n\
         NICTXW  equ {NIC_TX_WINDOW:#06x}\n"
    )
}

/// The NIC subroutines.
///
/// * `nic_accept`: selects connection handle `A` and binds the next
///   pending connection to it (`ACCEPT`). Clobbers `A`.
/// * `nic_close`: selects handle `A` and closes it. Clobbers `A`.
/// * `nic_recv`: copies the *selected* handle's receive frame to the
///   buffer at `DE` and consumes it (`RX_NEXT`). Returns the length in
///   `BC` (0 when no frame was pending, in which case no `RX_NEXT` is
///   issued). Clobbers `A`, `HL`, `DE`.
/// * `nic_send`: transmits `BC` bytes starting at `HL` on the selected
///   handle (staged through the tx window, then `TX_GO`). Clobbers `A`,
///   `HL`, `DE`, `BC`.
///
/// `nic_accept`/`nic_close` leave handle `A` selected, so the usual
/// sequence — select, then recv/send — needs no extra `CONN` write.
pub fn nic_shims() -> String {
    format!(
        "nic_accept:\n\
         \x20       ioe ld (NICCONN), a\n\
         \x20       ld a, {CMD_ACCEPT}\n\
         \x20       ioe ld (NICCMD), a\n\
         \x20       ret\n\
         \n\
         nic_close:\n\
         \x20       ioe ld (NICCONN), a\n\
         \x20       ld a, {CMD_CLOSE}\n\
         \x20       ioe ld (NICCMD), a\n\
         \x20       ret\n\
         \n\
         nic_recv:\n\
         \x20       ioe ld a, (NICRXL)\n\
         \x20       ld c, a\n\
         \x20       ioe ld a, (NICRXH)\n\
         \x20       ld b, a\n\
         \x20       ld a, b\n\
         \x20       or c\n\
         \x20       jr z, nr_done\n\
         \x20       push bc\n\
         \x20       ld hl, NICRXW\n\
         nr_loop:\n\
         \x20       ioe ld a, (hl)\n\
         \x20       ld (de), a\n\
         \x20       inc hl\n\
         \x20       inc de\n\
         \x20       dec bc\n\
         \x20       ld a, b\n\
         \x20       or c\n\
         \x20       jr nz, nr_loop\n\
         \x20       pop bc\n\
         \x20       ld a, {CMD_RX_NEXT}\n\
         \x20       ioe ld (NICCMD), a\n\
         nr_done:\n\
         \x20       ret\n\
         \n\
         nic_send:\n\
         \x20       ld a, c\n\
         \x20       ioe ld (NICTXL), a\n\
         \x20       ld a, b\n\
         \x20       ioe ld (NICTXH), a\n\
         \x20       ld a, b\n\
         \x20       or c\n\
         \x20       jr z, ns_go\n\
         \x20       ld de, NICTXW\n\
         ns_loop:\n\
         \x20       ld a, (hl)\n\
         \x20       ioe ld (de), a\n\
         \x20       inc hl\n\
         \x20       inc de\n\
         \x20       dec bc\n\
         \x20       ld a, b\n\
         \x20       or c\n\
         \x20       jr nz, ns_loop\n\
         ns_go:\n\
         \x20       ld a, {CMD_TX_GO}\n\
         \x20       ioe ld (NICCMD), a\n\
         \x20       ret\n"
    )
}

/// The body of the reference NIC service routine (between the register
/// save and restore): a drain-everything loop over the three interrupt
/// causes on connection handle 0 — bind a pending connection when the
/// handle is free, echo every received frame through the scratch buffer
/// at [`ECHO_BUF`], and close the handle once the peer has gone and the
/// queue is drained. Reusable by firmwares that add their own
/// prologue/epilogue (the differential tests compose it with a serial
/// ISR).
pub fn nic_isr_body() -> String {
    format!(
        "isr_loop:\n\
         \x20       ioe ld a, (NICST)\n\
         \x20       ld b, a\n\
         \x20       and {STATUS_ACCEPT_READY}\n\
         \x20       jr z, isr_rx\n\
         \x20       ld a, b\n\
         \x20       and {STATUS_TX_READY}\n\
         \x20       jr nz, isr_rx\n\
         \x20       xor a\n\
         \x20       call nic_accept\n\
         \x20       jr isr_loop\n\
         isr_rx:\n\
         \x20       ld a, b\n\
         \x20       and {STATUS_RX_AVAIL}\n\
         \x20       jr z, isr_close\n\
         \x20       ld de, {ECHO_BUF:#06x}\n\
         \x20       call nic_recv\n\
         \x20       ld hl, {ECHO_BUF:#06x}\n\
         \x20       call nic_send\n\
         \x20       jr isr_loop\n\
         isr_close:\n\
         \x20       ld a, b\n\
         \x20       and {STATUS_PEER_CLOSED}\n\
         \x20       jr z, isr_done\n\
         \x20       ld a, b\n\
         \x20       and {STATUS_TX_READY}\n\
         \x20       jr z, isr_done\n\
         \x20       xor a\n\
         \x20       call nic_close\n\
         \x20       jr isr_loop\n\
         isr_done:\n"
    )
}

/// The complete echo-server firmware: configures the NIC for the given
/// TCP `port` with receive interrupts, then sleeps in `halt`; the ISR
/// accepts the connection onto handle 0, drains every pending frame and
/// echoes each one back (`nic_recv` → `nic_send` through the scratch
/// buffer at [`ECHO_BUF`]), and closes the handle when the peer goes
/// away.
///
/// The ISR runs at priority 1 and processes *all* interrupt causes
/// before `reti`, so interrupt delivery only ever happens against a
/// halted CPU or at the `reti` boundary — the two points both execution
/// engines sample identically. This is what makes the end-to-end
/// transcripts and cycle counts byte-identical across engines.
pub fn echo_firmware(port: u16) -> String {
    let equates = nic_equates();
    let shims = nic_shims();
    let isr_body = nic_isr_body();
    format!(
        "{equates}\
         \n\
         \x20       org {NIC_VECTOR:#06x}\n\
         \x20       jp nic_isr\n\
         \n\
         \x20       org 0x4000\n\
         start:\n\
         \x20       ld a, {lport_lo}\n\
         \x20       ioe ld (NICPRTL), a\n\
         \x20       ld a, {lport_hi}\n\
         \x20       ioe ld (NICPRTH), a\n\
         \x20       ld a, 1\n\
         \x20       ioe ld (NICIER), a\n\
         \x20       ld a, {CMD_LISTEN}\n\
         \x20       ioe ld (NICCMD), a\n\
         spin:\n\
         \x20       halt\n\
         \x20       jr spin\n\
         \n\
         nic_isr:\n\
         \x20       push af\n\
         \x20       push bc\n\
         \x20       push de\n\
         \x20       push hl\n\
         {isr_body}\
         \x20       pop hl\n\
         \x20       pop de\n\
         \x20       pop bc\n\
         \x20       pop af\n\
         \x20       reti\n\
         \n\
         {shims}",
        lport_lo = port & 0xFF,
        lport_hi = port >> 8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_firmware_assembles() {
        let image = rabbit::assemble(&echo_firmware(7)).expect("echo firmware assembles");
        assert!(image.sections.iter().any(|s| s.addr == NIC_VECTOR));
        assert!(image.sections.iter().any(|s| s.addr == 0x4000));
    }

    #[test]
    fn shims_assemble_standalone() {
        let src = format!("{}        org 0x4000\n{}", nic_equates(), nic_shims());
        rabbit::assemble(&src).expect("shims assemble");
    }
}
