//! Multi-connection serving harness on *compiled C* firmware: the whole
//! pipeline of the paper — C source → `dcc` compiler → Rabbit assembly →
//! board → NIC register file → netsim TCP — serving several concurrent
//! host-side clients at once.
//!
//! Where [`crate::echo`] runs hand-written assembly for one connection,
//! this module compiles a round-robin echo server written in the Dynamic
//! C subset (`nic.h`-style intrinsics, `interrupt` service routines) and
//! drives [`rabbit::nicmap::MAX_CONNS`] connection handles concurrently,
//! with a serial-console status line as a second, higher-priority
//! interrupt source. Everything observable — per-client transcripts,
//! cycle counts, serial output, telemetry — is byte-identical across the
//! interpreter and block-cache engines.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::{Endpoint, Ipv4, LinkParams, Recv, SimHost, SocketId, World};
use rabbit::nicmap::{
    MAX_CONNS, STATUS_ACCEPT_READY, STATUS_ERR, STATUS_PEER_CLOSED, STATUS_RX_AVAIL,
    STATUS_TX_READY,
};
use rabbit::Engine;

use crate::nic::NIC_VECTOR;
use crate::serial::SERIAL_A_VECTOR;
use crate::RunOutcome;

/// TCP port the C server listens on.
pub const SERVE_PORT: u16 = 7;

/// The probe byte the host console sends; the guest answers each one
/// with a status line `S<open-handles>\n`.
pub const SERIAL_PROBE: u8 = b'?';

/// The round-robin echo server, in the Dynamic C subset.
///
/// The NIC service routine drains *every* pending cause across all
/// connection handles before returning — accept while a handle is free,
/// echo every queued frame, close once the peer is gone and the queue is
/// drained — so interrupt delivery only ever happens against a halted
/// CPU or at the `reti` boundary, the two points both execution engines
/// sample identically. The serial routine runs at priority 2 (console
/// preempts the NIC) and answers each probe byte with `S<n>\n` where `n`
/// is the number of open handles the NIC routine last counted.
pub fn echo_server_c(port: u16) -> String {
    format!(
        "root char buf[1024];\n\
         int nopen;\n\
         int naccepts;\n\
         \n\
         interrupt void nic_isr() {{\n\
             int st;\n\
             int h;\n\
             int n;\n\
             int again;\n\
             again = 1;\n\
             while (again) {{\n\
                 again = 0;\n\
                 for (h = 0; h < {conns}; h = h + 1) {{\n\
                     st = nic_conn(h);\n\
                     if ((st & {acc}) && !(st & {open})) {{\n\
                         st = nic_accept(h);\n\
                         if (!(st & {err})) naccepts = naccepts + 1;\n\
                         again = 1;\n\
                         st = nic_conn(h);\n\
                     }}\n\
                     if (st & {rx}) {{\n\
                         n = nic_recv(h, buf);\n\
                         nic_send(h, buf, n);\n\
                         again = 1;\n\
                     }}\n\
                     if ((st & {open}) && (st & {gone}) && !(st & {rx})) {{\n\
                         nic_close(h);\n\
                         again = 1;\n\
                     }}\n\
                 }}\n\
             }}\n\
             n = 0;\n\
             for (h = 0; h < {conns}; h = h + 1) {{\n\
                 if (nic_conn(h) & {open}) n = n + 1;\n\
             }}\n\
             nopen = n;\n\
         }}\n\
         \n\
         interrupt void ser_isr() {{\n\
             while (serial_status() & 0x80) {{\n\
                 serial_getc();\n\
                 serial_putc(83);\n\
                 serial_putc(48 + nopen);\n\
                 serial_putc(10);\n\
             }}\n\
         }}\n\
         \n\
         int main() {{\n\
             serial_init(2);\n\
             nic_listen({port});\n\
             nic_ier(1);\n\
             idle();\n\
             return 0;\n\
         }}\n",
        conns = MAX_CONNS,
        acc = STATUS_ACCEPT_READY,
        open = STATUS_TX_READY,
        err = STATUS_ERR,
        rx = STATUS_RX_AVAIL,
        gone = STATUS_PEER_CLOSED,
    )
}

/// Compiles [`echo_server_c`] with the in-tree `dcc` compiler, vectoring
/// the NIC and serial interrupts into its two `interrupt` functions.
///
/// # Panics
///
/// If the C source fails to compile or assemble (a compiler bug).
pub fn build_serve_firmware(opts: dcc::Options) -> dcc::Build {
    dcc::build_firmware(
        &echo_server_c(SERVE_PORT),
        opts,
        &[(SERIAL_A_VECTOR, "ser_isr"), (NIC_VECTOR, "nic_isr")],
    )
    .expect("C echo server compiles")
}

/// Result of one multi-client serving session.
#[derive(Debug)]
pub struct ServeRun {
    /// What each client received back, in order, one transcript per
    /// client.
    pub transcripts: Vec<Vec<u8>>,
    /// Guest cycles consumed (including halted idle cycles).
    pub cycles: u64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Final virtual time of the shared world, in microseconds.
    pub virtual_us: u64,
    /// Everything the guest wrote to the serial console (the `S<n>\n`
    /// status lines).
    pub serial_tx: Vec<u8>,
    /// Peak simultaneously-open connection handles, sampled between run
    /// slices by the host driver.
    pub peak_open: usize,
    /// Final value of the guest's `naccepts` counter (C global).
    pub guest_accepts: u16,
    /// Final value of the guest's `nopen` counter (C global) — 0 after
    /// an orderly teardown.
    pub guest_open: u16,
    /// Deterministic text snapshot of the world telemetry (includes the
    /// per-handle `net.board.conn.*` counters).
    pub snapshot: String,
    /// Root code size of the compiled firmware, in bytes.
    pub code_size: usize,
}

/// Runs the compiled-C echo server against `clients.len()` concurrent
/// host-side clients. Client `i` sends the messages of `clients[i]` in
/// order, the next only after the previous came back in full; all
/// clients are connected up-front, so when more clients than handles
/// dial in, the surplus waits in the listen backlog. When `probe_gap_us`
/// is set, the driver injects a console probe byte every so many
/// microseconds of virtual time (only while the guest is halted, so the
/// injection points are engine-independent).
///
/// # Panics
///
/// If the firmware faults or the session does not converge.
pub fn serve_clients(
    engine: Engine,
    opts: dcc::Options,
    clients: &[Vec<Vec<u8>>],
    probe_gap_us: Option<u64>,
) -> ServeRun {
    let build = build_serve_firmware(opts);

    let world = Rc::new(RefCell::new(World::new(42)));
    let mut fleet = crate::fleet::Fleet::new(&world);
    let b = fleet.add_solo_board(engine, "rmc2000", Ipv4::new(10, 0, 0, 1));
    let board_ip = fleet.ip(b);
    let board_id = fleet.host(b).id();
    let mut hosts: Vec<SimHost> = (0..clients.len())
        .map(|i| {
            let ip = Ipv4::new(10, 0, 0, 2 + u8::try_from(i).expect("few clients"));
            let host = SimHost::attach(&world, "client", ip);
            world
                .borrow_mut()
                .link(board_id, host.id(), LinkParams::ethernet_10base_t());
            host
        })
        .collect();

    let board = fleet.board_mut(b);
    board.load(&build.image);
    board.set_pc(dcc::layout::CODE_ORG);

    // Boot: main configures serial + NIC and parks in `idle()`.
    assert_eq!(board.run(100_000), RunOutcome::Halted, "firmware boots");

    // Everyone dials in; surplus connections wait in the backlog.
    let conns: Vec<SocketId> = hosts
        .iter_mut()
        .map(|h| h.connect(Endpoint::new(board_ip, SERVE_PORT)))
        .collect();

    struct ClientState {
        next_msg: usize,
        sent: usize,
        echoed: Vec<u8>,
        expected: usize,
        closed: bool,
    }
    let mut state: Vec<ClientState> = clients
        .iter()
        .map(|msgs| ClientState {
            next_msg: 0,
            sent: 0,
            echoed: Vec::new(),
            expected: msgs.iter().map(Vec::len).sum(),
            closed: false,
        })
        .collect();

    const RUN_CHUNK: u64 = 2_000;
    const IDLE_CHUNK: u64 = 100 * crate::nic::CYCLES_PER_US;
    const MAX_CYCLES: u64 = 500_000_000;

    let mut peak_open = 0usize;
    let mut next_probe_us = probe_gap_us.unwrap_or(0);

    while state.iter().any(|s| s.echoed.len() < s.expected) {
        assert!(
            fleet.board(b).cpu.cycles < MAX_CYCLES,
            "serve session did not converge"
        );
        fleet.solo_pump(RUN_CHUNK, IDLE_CHUNK, |board| {
            if let Some(gap) = probe_gap_us {
                // Console probes only against a halted CPU: the
                // injection point is then a deterministic function of
                // virtual time, identical on both engines.
                if world.borrow().now() >= next_probe_us {
                    board.serial_mut().inject(SERIAL_PROBE);
                    next_probe_us = world.borrow().now() + gap;
                }
            }
        });
        peak_open = peak_open.max(fleet.board(b).nic().expect("nic attached").open_handles());

        for ((host, &conn), (msgs, st)) in hosts
            .iter_mut()
            .zip(&conns)
            .zip(clients.iter().zip(&mut state))
        {
            if st.next_msg < msgs.len() && st.echoed.len() == st.sent && host.established(conn) {
                let msg = &msgs[st.next_msg];
                assert_eq!(host.send(conn, msg), msg.len(), "client send fits");
                st.sent += msg.len();
                st.next_msg += 1;
            }
            let avail = host.available(conn);
            if avail > 0 {
                let mut buf = vec![0u8; avail];
                if let Recv::Data(n) = host.recv(conn, &mut buf) {
                    buf.truncate(n);
                    st.echoed.extend_from_slice(&buf);
                }
            }
            // A finished client hangs up immediately — that is what
            // frees its handle for connections still waiting in the
            // backlog when there are more clients than handles.
            if st.echoed.len() == st.expected && !st.closed {
                host.close(conn);
                st.closed = true;
            }
        }
    }

    // Orderly teardown: the guest observes the FINs, closes its
    // handles, and frees them for anything left in the backlog.
    for _ in 0..40 {
        fleet.solo_settle(RUN_CHUNK, IDLE_CHUNK);
        peak_open = peak_open.max(fleet.board(b).nic().expect("nic attached").open_handles());
    }

    let board = fleet.board(b);
    let read_c_int = |name: &str| -> u16 {
        let phys = build.symbol_phys(name).expect("C global exists");
        u16::from_le_bytes([board.mem.read_phys(phys), board.mem.read_phys(phys + 1)])
    };
    let guest_accepts = read_c_int("_naccepts");
    let guest_open = read_c_int("_nopen");
    let snapshot = world.borrow().telemetry().snapshot().to_text();
    let virtual_us = world.borrow().now();
    ServeRun {
        transcripts: state.into_iter().map(|s| s.echoed).collect(),
        cycles: board.cpu.cycles,
        instructions: board.cpu.instructions,
        virtual_us,
        serial_tx: board.serial().transmitted().to_vec(),
        peak_open,
        guest_accepts,
        guest_open,
        snapshot,
        code_size: build.code_size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_server_compiles_under_both_option_sets() {
        for opts in [dcc::Options::baseline(), dcc::Options::all_optimizations()] {
            let build = build_serve_firmware(opts);
            assert!(build.symbol_phys("_nic_isr").is_some());
            assert!(build.symbol_phys("_ser_isr").is_some());
            assert!(
                build
                    .image
                    .sections
                    .iter()
                    .any(|s| s.addr == NIC_VECTOR && s.bytes[0] == 0xC3),
                "NIC vector holds a jp"
            );
            assert!(
                build
                    .image
                    .sections
                    .iter()
                    .any(|s| s.addr == SERIAL_A_VECTOR && s.bytes[0] == 0xC3),
                "serial vector holds a jp"
            );
        }
    }

    #[test]
    fn serves_one_client_end_to_end() {
        let r = serve_clients(
            Engine::Interpreter,
            dcc::Options::all_optimizations(),
            &[vec![b"hello board".to_vec()]],
            None,
        );
        assert_eq!(r.transcripts, vec![b"hello board".to_vec()]);
        assert_eq!(r.guest_accepts, 1);
        assert_eq!(r.guest_open, 0, "teardown closed the handle");
    }
}
