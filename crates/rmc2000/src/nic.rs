//! The network interface controller: the board's port-mapped NIC, bridged
//! to a `netsim` host.
//!
//! The real RMC2000 carries a 10Base-T NIC on the Rabbit's external I/O
//! bus, with Dynamic C's TCP/IP library terminating TCP on the CPU. This
//! model keeps the paper's programming surface (command/status registers
//! plus packet windows reached with `ioe`) but terminates TCP in the
//! simulated network stack, like a TCP-offload NIC: the frames the guest
//! exchanges through the rings are TCP payload chunks. Guest cycles drive
//! the backend clock — [`Nic::tick`] converts CPU cycles to microseconds
//! at [`CYCLES_PER_US`] (the repo-wide 30 MHz board clock) and advances
//! the shared `netsim` world in lockstep, so instruction execution and
//! packet delivery share one deterministic timeline.
//!
//! # Register map (external I/O space)
//!
//! | port | dir | register |
//! |------|-----|----------|
//! | `0x0300` | w | `CMD`: 1 = LISTEN, 2 = `TX_GO`, 3 = `RX_NEXT` |
//! | `0x0301` | r | `STATUS`: bit0 link, bit1 rx avail, bit2 tx ready, bit3 peer closed, bit4 established |
//! | `0x0302` | w | `IER`: bit0 enables the receive interrupt |
//! | `0x0303/4` | r | `RXLEN` lo/hi: length of the current rx frame |
//! | `0x0305/6` | w | `TXLEN` lo/hi: length for the next `TX_GO` |
//! | `0x0307/8` | w | `LPORT` lo/hi: TCP port for LISTEN (default 7) |
//! | `0x1000..` | r | rx window: bytes of the current rx frame |
//! | `0x1800..` | w | tx window: staging buffer for `TX_GO` |
//!
//! Receive is level-ish like serial port A: a pending interrupt (priority
//! 1, vector [`NIC_VECTOR`]) is raised while frames wait in the ring and
//! the `IER` bit is set; `RX_NEXT` consumes the current frame and
//! re-raises if more are queued.
//!
//! # Determinism across engines
//!
//! The bus delivers exact cycle totals at every `ioi`/`ioe` access (which
//! are barriers in the block-caching engine), but the two engines tick in
//! different chunkings. The NIC therefore advances the world and polls
//! for received data only at fixed virtual-time boundaries (every
//! [`POLL_PERIOD_US`]); boundary crossings depend only on the cycle
//! *total*, so frame chunking — and hence every guest-visible register —
//! is byte-identical under `Engine::Interpreter` and
//! `Engine::BlockCache`.

use std::any::Any;
use std::collections::VecDeque;

use netsim::{SimHost, SocketId};
use rabbit::{Device, Interrupt, PortRange};
use telemetry::Counter;

/// Logical address of the NIC's interrupt service routine vector.
pub const NIC_VECTOR: u16 = 0x00F0;
/// CPU cycles per microsecond of virtual time (the 30 MHz board clock).
pub const CYCLES_PER_US: u64 = 30;
/// Virtual-time period between backend polls.
pub const POLL_PERIOD_US: u64 = 50;
/// Largest frame the rings carry.
pub const FRAME_MAX: usize = 1024;
/// Receive-ring depth, in frames; the backend holds further data back
/// (TCP flow control) while the ring is full.
pub const RX_RING: usize = 8;

/// Base of the NIC register bank in external I/O space.
pub const NIC_BASE: u16 = 0x0300;
/// Command register (write).
pub const NIC_CMD: u16 = NIC_BASE;
/// Status register (read).
pub const NIC_STATUS: u16 = NIC_BASE + 1;
/// Interrupt-enable register (write).
pub const NIC_IER: u16 = NIC_BASE + 2;
/// Current rx frame length, low byte (read).
pub const NIC_RXLEN_LO: u16 = NIC_BASE + 3;
/// Current rx frame length, high byte (read).
pub const NIC_RXLEN_HI: u16 = NIC_BASE + 4;
/// Tx length, low byte (write).
pub const NIC_TXLEN_LO: u16 = NIC_BASE + 5;
/// Tx length, high byte (write).
pub const NIC_TXLEN_HI: u16 = NIC_BASE + 6;
/// Listen port, low byte (write).
pub const NIC_LPORT_LO: u16 = NIC_BASE + 7;
/// Listen port, high byte (write).
pub const NIC_LPORT_HI: u16 = NIC_BASE + 8;
/// Start of the receive window in external I/O space.
pub const NIC_RX_WINDOW: u16 = 0x1000;
/// Start of the transmit window in external I/O space.
pub const NIC_TX_WINDOW: u16 = 0x1800;

/// `CMD` value: open the listening socket on the configured port.
pub const CMD_LISTEN: u8 = 1;
/// `CMD` value: transmit `TXLEN` bytes from the tx window.
pub const CMD_TX_GO: u8 = 2;
/// `CMD` value: consume the current rx frame.
pub const CMD_RX_NEXT: u8 = 3;

/// `STATUS` bit: link up (backend attached).
pub const STATUS_LINK: u8 = 0x01;
/// `STATUS` bit: a received frame is waiting.
pub const STATUS_RX_AVAIL: u8 = 0x02;
/// `STATUS` bit: the tx path can take a frame (always set).
pub const STATUS_TX_READY: u8 = 0x04;
/// `STATUS` bit: the peer closed its direction.
pub const STATUS_PEER_CLOSED: u8 = 0x08;
/// `STATUS` bit: a TCP connection is established.
pub const STATUS_ESTABLISHED: u8 = 0x10;

/// What the NIC plugs into: a clocked transport that produces and
/// consumes payload frames.
///
/// `advance` must be additive (`advance(a); advance(b)` ≡
/// `advance(a + b)` when no `poll` intervenes) — the NIC calls it in
/// whatever increments the CPU's tick chunking produces.
pub trait NicBackend {
    /// Advances backend time by `us` microseconds.
    fn advance(&mut self, us: u64);

    /// Opens the listening socket on `port`.
    fn listen(&mut self, port: u16);

    /// Takes the next available payload frame, if any (at most
    /// [`FRAME_MAX`] bytes).
    fn poll(&mut self) -> Option<Vec<u8>>;

    /// Queues `frame` for transmission.
    fn send(&mut self, frame: &[u8]);

    /// Whether a TCP connection is established.
    fn established(&self) -> bool;

    /// Whether the peer has closed its direction.
    fn peer_closed(&self) -> bool;

    /// A lower bound on how far in the future (µs from the backend's
    /// current time) a [`NicBackend::poll`] could first return a frame or
    /// observe changed connection state. `Some(0)` — the default — means
    /// "unknown: treat every poll as potentially live"; `None` means
    /// nothing is in flight and no poll will ever observe anything until
    /// the guest acts. Used by the idle scheduler to extend the NIC's
    /// deadline past provably idle poll boundaries; over-conservative
    /// answers cost speed, never correctness. Relative time keeps the
    /// hint meaningful even when the backend clock (the shared world) did
    /// not start with the NIC's.
    fn next_activity_us(&self) -> Option<u64> {
        Some(0)
    }
}

/// The `net.board.*` telemetry counters the NIC maintains.
#[derive(Debug, Clone)]
pub struct NicCounters {
    /// Frames delivered to the guest.
    pub rx_frames: Counter,
    /// Bytes delivered to the guest.
    pub rx_bytes: Counter,
    /// Frames transmitted by the guest.
    pub tx_frames: Counter,
    /// Bytes transmitted by the guest.
    pub tx_bytes: Counter,
    /// Receive interrupts raised.
    pub irqs: Counter,
}

impl NicCounters {
    /// Registers the counters in `registry` (idempotent: fetches the
    /// existing cells on a second call).
    pub fn register(registry: &telemetry::Registry) -> NicCounters {
        NicCounters {
            rx_frames: registry.counter("net.board.rx_frames", &[]),
            rx_bytes: registry.counter("net.board.rx_bytes", &[]),
            tx_frames: registry.counter("net.board.tx_frames", &[]),
            tx_bytes: registry.counter("net.board.tx_bytes", &[]),
            irqs: registry.counter("net.board.irqs", &[]),
        }
    }

    /// Free-standing counters, not attached to any registry.
    pub fn detached() -> NicCounters {
        NicCounters {
            rx_frames: Counter::new(),
            rx_bytes: Counter::new(),
            tx_frames: Counter::new(),
            tx_bytes: Counter::new(),
            irqs: Counter::new(),
        }
    }
}

/// The NIC device.
pub struct Nic {
    backend: Box<dyn NicBackend>,
    counters: NicCounters,
    rx: VecDeque<Vec<u8>>,
    tx_buf: Box<[u8; FRAME_MAX]>,
    tx_len: u16,
    listen_port: u16,
    irq_enabled: bool,
    irq_pending: bool,
    /// Cycles not yet converted to microseconds.
    cycle_acc: u64,
    /// Microseconds of backend time advanced so far.
    time_us: u64,
    /// Next virtual time at which the backend is polled.
    next_poll_us: u64,
}

impl Nic {
    /// A NIC wired to `backend`, with detached counters.
    pub fn new(backend: Box<dyn NicBackend>) -> Nic {
        Nic::with_counters(backend, NicCounters::detached())
    }

    /// A NIC wired to `backend`, reporting through `counters`.
    pub fn with_counters(backend: Box<dyn NicBackend>, counters: NicCounters) -> Nic {
        Nic {
            backend,
            counters,
            rx: VecDeque::new(),
            tx_buf: Box::new([0; FRAME_MAX]),
            tx_len: 0,
            listen_port: 7,
            irq_enabled: false,
            irq_pending: false,
            cycle_acc: 0,
            time_us: 0,
            next_poll_us: POLL_PERIOD_US,
        }
    }

    /// A NIC attached to a `netsim` host, with counters registered in the
    /// world's telemetry registry.
    pub fn simulated(host: SimHost) -> Nic {
        let counters = NicCounters {
            rx_frames: host.counter("net.board.rx_frames"),
            rx_bytes: host.counter("net.board.rx_bytes"),
            tx_frames: host.counter("net.board.tx_frames"),
            tx_bytes: host.counter("net.board.tx_bytes"),
            irqs: host.counter("net.board.irqs"),
        };
        Nic::with_counters(Box::new(SimBackend::new(host)), counters)
    }

    /// The counters this NIC reports through.
    pub fn counters(&self) -> &NicCounters {
        &self.counters
    }

    /// Frames waiting in the receive ring.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Recomputes the level-ish interrupt line after a state change.
    fn update_irq(&mut self) {
        let level = self.irq_enabled && !self.rx.is_empty();
        if level && !self.irq_pending {
            self.counters.irqs.inc();
        }
        self.irq_pending = level;
    }

    /// Pulls received frames from the backend into the ring (called only
    /// at poll boundaries).
    fn poll_backend(&mut self) {
        while self.rx.len() < RX_RING {
            match self.backend.poll() {
                Some(frame) => {
                    self.counters.rx_frames.inc();
                    self.counters.rx_bytes.add(frame.len() as u64);
                    self.rx.push_back(frame);
                }
                None => break,
            }
        }
        self.update_irq();
    }
}

impl Device for Nic {
    fn name(&self) -> &'static str {
        "nic"
    }

    fn claims(&self) -> Vec<PortRange> {
        vec![
            PortRange::external(NIC_CMD, NIC_LPORT_HI),
            PortRange::external(NIC_RX_WINDOW, NIC_RX_WINDOW + FRAME_MAX as u16 - 1),
            PortRange::external(NIC_TX_WINDOW, NIC_TX_WINDOW + FRAME_MAX as u16 - 1),
        ]
    }

    fn read(&mut self, port: u16, _external: bool) -> u8 {
        match port {
            NIC_STATUS => {
                let mut st = STATUS_LINK | STATUS_TX_READY;
                if !self.rx.is_empty() {
                    st |= STATUS_RX_AVAIL;
                }
                if self.backend.established() {
                    st |= STATUS_ESTABLISHED;
                }
                if self.backend.peer_closed() {
                    st |= STATUS_PEER_CLOSED;
                }
                st
            }
            NIC_RXLEN_LO => self.rx.front().map_or(0, |f| f.len() as u8),
            NIC_RXLEN_HI => self.rx.front().map_or(0, |f| (f.len() >> 8) as u8),
            p if (NIC_RX_WINDOW..NIC_RX_WINDOW + FRAME_MAX as u16).contains(&p) => self
                .rx
                .front()
                .and_then(|f| f.get(usize::from(p - NIC_RX_WINDOW)))
                .copied()
                .unwrap_or(0xFF),
            _ => 0xFF,
        }
    }

    fn write(&mut self, port: u16, value: u8, _external: bool) {
        match port {
            NIC_CMD => match value {
                CMD_LISTEN => self.backend.listen(self.listen_port),
                CMD_TX_GO => {
                    let len = usize::from(self.tx_len).min(FRAME_MAX);
                    self.counters.tx_frames.inc();
                    self.counters.tx_bytes.add(len as u64);
                    let frame = &self.tx_buf[..len];
                    self.backend.send(frame);
                }
                CMD_RX_NEXT => {
                    self.rx.pop_front();
                    self.update_irq();
                }
                _ => {}
            },
            NIC_IER => {
                self.irq_enabled = value & 1 != 0;
                self.update_irq();
            }
            NIC_TXLEN_LO => self.tx_len = (self.tx_len & 0xFF00) | u16::from(value),
            NIC_TXLEN_HI => self.tx_len = (self.tx_len & 0x00FF) | (u16::from(value) << 8),
            NIC_LPORT_LO => self.listen_port = (self.listen_port & 0xFF00) | u16::from(value),
            NIC_LPORT_HI => {
                self.listen_port = (self.listen_port & 0x00FF) | (u16::from(value) << 8);
            }
            p if (NIC_TX_WINDOW..NIC_TX_WINDOW + FRAME_MAX as u16).contains(&p) => {
                self.tx_buf[usize::from(p - NIC_TX_WINDOW)] = value;
            }
            _ => {}
        }
    }

    fn tick(&mut self, cycles: u64) {
        self.cycle_acc += cycles;
        let us = self.cycle_acc / CYCLES_PER_US;
        if us == 0 {
            return;
        }
        self.cycle_acc %= CYCLES_PER_US;
        let target = self.time_us + us;
        // Advance to (and poll at) each fixed boundary the new time
        // crosses, then run the remainder without polling. Boundary
        // crossings depend only on the accumulated cycle total, never on
        // tick chunking, so both execution engines observe identical
        // frames at identical virtual times.
        while self.next_poll_us <= target {
            let step = self.next_poll_us - self.time_us;
            if step > 0 {
                self.backend.advance(step);
            }
            self.time_us = self.next_poll_us;
            self.poll_backend();
            self.next_poll_us += POLL_PERIOD_US;
        }
        if target > self.time_us {
            self.backend.advance(target - self.time_us);
            self.time_us = target;
        }
    }

    fn tick_quantum(&self) -> u64 {
        // Batch to one poll period; the bus flushes the exact total
        // before every port access anyway.
        POLL_PERIOD_US * CYCLES_PER_US
    }

    fn next_deadline(&self) -> Option<u64> {
        // The NIC only acts (polls the backend, possibly raising the rx
        // interrupt) at fixed poll boundaries, so the next observable
        // event is the first boundary at which the backend could have
        // something to say. Polls at earlier boundaries still happen
        // inside the batched tick — they just provably observe nothing,
        // because the backend reports no activity before `activity`.
        let activity = self.time_us + self.backend.next_activity_us()?;
        let mut boundary = self.next_poll_us;
        if activity > boundary {
            // Round the activity time up onto the poll grid.
            boundary += (activity - boundary).div_ceil(POLL_PERIOD_US) * POLL_PERIOD_US;
        }
        Some((boundary - self.time_us) * CYCLES_PER_US - self.cycle_acc)
    }

    fn pending(&self) -> Option<Interrupt> {
        self.irq_pending.then_some(Interrupt {
            priority: 1,
            vector: NIC_VECTOR,
        })
    }

    fn acknowledge(&mut self, _vector: u16) {
        self.irq_pending = false;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("rx_frames_queued", &self.rx.len())
            .field("irq_pending", &self.irq_pending)
            .field("time_us", &self.time_us)
            .finish()
    }
}

/// The production backend: a TCP echo-capable attachment to a `netsim`
/// host (see [`SimHost`]). One listener, one connection at a time; bytes
/// the send buffer rejects are retried on the next advance.
pub struct SimBackend {
    host: SimHost,
    listener: Option<SocketId>,
    conn: Option<SocketId>,
    pending_tx: Vec<u8>,
}

impl SimBackend {
    /// Wraps a host handle.
    pub fn new(host: SimHost) -> SimBackend {
        SimBackend {
            host,
            listener: None,
            conn: None,
            pending_tx: Vec::new(),
        }
    }

    fn flush_tx(&mut self) {
        if let Some(conn) = self.conn {
            if !self.pending_tx.is_empty() {
                let sent = self.host.send(conn, &self.pending_tx);
                self.pending_tx.drain(..sent);
            }
        }
    }
}

impl NicBackend for SimBackend {
    fn advance(&mut self, us: u64) {
        self.host.advance(us);
    }

    fn listen(&mut self, port: u16) {
        if self.listener.is_none() {
            self.listener = self.host.listen(port, 1).ok();
        }
    }

    fn poll(&mut self) -> Option<Vec<u8>> {
        if self.conn.is_none() {
            if let Some(l) = self.listener {
                self.conn = self.host.accept(l);
            }
        }
        self.flush_tx();
        let conn = self.conn?;
        let avail = self.host.available(conn).min(FRAME_MAX);
        if avail == 0 {
            return None;
        }
        let mut frame = vec![0u8; avail];
        match self.host.recv(conn, &mut frame) {
            netsim::Recv::Data(n) => {
                frame.truncate(n);
                Some(frame)
            }
            _ => None,
        }
    }

    fn send(&mut self, frame: &[u8]) {
        self.pending_tx.extend_from_slice(frame);
        self.flush_tx();
    }

    fn established(&self) -> bool {
        self.conn.is_some_and(|c| self.host.established(c))
    }

    fn peer_closed(&self) -> bool {
        self.conn.is_some_and(|c| self.host.peer_closed(c))
    }

    fn next_activity_us(&self) -> Option<u64> {
        // Anything a poll would act on right now?
        let live_now = !self.pending_tx.is_empty()
            || self.conn.is_some_and(|c| self.host.available(c) > 0)
            || (self.conn.is_none() && self.listener.is_some_and(|l| self.host.pending(l) > 0));
        if live_now {
            return Some(0);
        }
        // Otherwise socket state can only change when the world processes
        // its next scheduled event (delivery, retransmit, timer) — a
        // lower bound on any observable poll. An empty event queue means
        // nothing will ever arrive until the guest transmits.
        let now = self.host.now();
        self.host.next_event_us().map(|t| t.saturating_sub(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted backend for unit tests: frames to deliver, capture of
    /// frames sent.
    #[derive(Default)]
    struct Script {
        rx: VecDeque<(u64, Vec<u8>)>, // (deliver at µs, frame)
        tx: Vec<Vec<u8>>,
        now: u64,
        listening: Option<u16>,
    }

    impl NicBackend for std::rc::Rc<std::cell::RefCell<Script>> {
        fn advance(&mut self, us: u64) {
            self.borrow_mut().now += us;
        }
        fn listen(&mut self, port: u16) {
            self.borrow_mut().listening = Some(port);
        }
        fn poll(&mut self) -> Option<Vec<u8>> {
            let mut s = self.borrow_mut();
            let now = s.now;
            if s.rx.front().is_some_and(|(t, _)| *t <= now) {
                s.rx.pop_front().map(|(_, f)| f)
            } else {
                None
            }
        }
        fn send(&mut self, frame: &[u8]) {
            self.borrow_mut().tx.push(frame.to_vec());
        }
        fn established(&self) -> bool {
            true
        }
        fn peer_closed(&self) -> bool {
            false
        }
    }

    fn scripted() -> (Nic, std::rc::Rc<std::cell::RefCell<Script>>) {
        let script = std::rc::Rc::new(std::cell::RefCell::new(Script::default()));
        (Nic::new(Box::new(script.clone())), script)
    }

    #[test]
    fn frames_arrive_only_at_poll_boundaries() {
        let (mut nic, script) = scripted();
        script.borrow_mut().rx.push_back((10, b"abc".to_vec()));
        nic.write(NIC_IER, 1, true);
        // 10 µs in: frame is ready in the backend but the boundary
        // (50 µs) has not been crossed.
        nic.tick(10 * CYCLES_PER_US);
        assert_eq!(nic.rx_pending(), 0);
        assert!(rabbit::Device::pending(&nic).is_none());
        // Crossing the boundary delivers it and raises the interrupt.
        nic.tick(40 * CYCLES_PER_US);
        assert_eq!(nic.rx_pending(), 1);
        assert_eq!(
            rabbit::Device::pending(&nic),
            Some(Interrupt {
                priority: 1,
                vector: NIC_VECTOR
            })
        );
        assert_eq!(nic.counters().rx_frames.get(), 1);
        assert_eq!(nic.counters().irqs.get(), 1);
    }

    #[test]
    fn chunked_ticks_cross_boundaries_identically() {
        let (mut a, sa) = scripted();
        let (mut b, sb) = scripted();
        for s in [&sa, &sb] {
            s.borrow_mut().rx.push_back((49, b"x".to_vec()));
            s.borrow_mut().rx.push_back((51, b"y".to_vec()));
        }
        a.write(NIC_IER, 1, true);
        b.write(NIC_IER, 1, true);
        // One big tick vs many tiny ticks: identical delivery.
        a.tick(120 * CYCLES_PER_US);
        for _ in 0..120 * CYCLES_PER_US {
            b.tick(1);
        }
        assert_eq!(a.rx_pending(), b.rx_pending());
        assert_eq!(a.rx_pending(), 2);
        assert_eq!(sa.borrow().now, sb.borrow().now);
    }

    #[test]
    fn rx_frame_reads_and_rx_next() {
        let (mut nic, script) = scripted();
        script.borrow_mut().rx.push_back((0, b"hi".to_vec()));
        script.borrow_mut().rx.push_back((0, b"z".to_vec()));
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        assert_eq!(nic.read(NIC_RXLEN_LO, true), 2);
        assert_eq!(nic.read(NIC_RXLEN_HI, true), 0);
        assert_eq!(nic.read(NIC_RX_WINDOW, true), b'h');
        assert_eq!(nic.read(NIC_RX_WINDOW + 1, true), b'i');
        nic.write(NIC_CMD, CMD_RX_NEXT, true);
        assert_eq!(nic.read(NIC_RXLEN_LO, true), 1);
        assert_eq!(nic.read(NIC_RX_WINDOW, true), b'z');
        nic.write(NIC_CMD, CMD_RX_NEXT, true);
        assert_eq!(nic.read(NIC_STATUS, true) & STATUS_RX_AVAIL, 0);
    }

    #[test]
    fn tx_stages_and_sends() {
        let (mut nic, script) = scripted();
        for (i, b) in b"ping".iter().enumerate() {
            nic.write(NIC_TX_WINDOW + i as u16, *b, true);
        }
        nic.write(NIC_TXLEN_LO, 4, true);
        nic.write(NIC_TXLEN_HI, 0, true);
        nic.write(NIC_CMD, CMD_TX_GO, true);
        assert_eq!(script.borrow().tx, vec![b"ping".to_vec()]);
        assert_eq!(nic.counters().tx_bytes.get(), 4);
    }

    #[test]
    fn listen_uses_configured_port() {
        let (mut nic, script) = scripted();
        nic.write(NIC_LPORT_LO, 0x39, true);
        nic.write(NIC_LPORT_HI, 0x05, true); // 1337
        nic.write(NIC_CMD, CMD_LISTEN, true);
        assert_eq!(script.borrow().listening, Some(1337));
    }

    #[test]
    fn ring_full_applies_backpressure() {
        let (mut nic, script) = scripted();
        for _ in 0..RX_RING + 3 {
            script.borrow_mut().rx.push_back((0, vec![0u8; 4]));
        }
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        assert_eq!(nic.rx_pending(), RX_RING);
        assert_eq!(script.borrow().rx.len(), 3, "rest held in the backend");
    }
}
