//! The network interface controller: the board's port-mapped NIC, bridged
//! to a `netsim` host.
//!
//! The real RMC2000 carries a 10Base-T NIC on the Rabbit's external I/O
//! bus, with Dynamic C's TCP/IP library terminating TCP on the CPU. This
//! model keeps the paper's programming surface (command/status registers
//! plus packet windows reached with `ioe`) but terminates TCP in the
//! simulated network stack, like a TCP-offload NIC: the frames the guest
//! exchanges through the rings are TCP payload chunks. Guest cycles drive
//! the backend's *local* clock — [`Nic::tick`] converts CPU cycles to
//! microseconds at [`CYCLES_PER_US`] (the repo-wide 30 MHz board clock).
//! Whether that local clock also drags the shared `netsim` world along is
//! the [`ClockMode`] contract: a solo board follows the legacy lockstep
//! ([`ClockMode::Follow`]), while fleet boards are passive participants
//! whose world is advanced only by the `rmc2000::fleet` scheduler —
//! either way instruction execution and packet delivery share one
//! deterministic timeline.
//!
//! # Connection handles
//!
//! The register file is handle-based: `CONN` selects one of
//! [`MAX_CONNS`] connection handles (the paper's limit of three
//! concurrent connections), and `RXLEN`, the rx window, `TX_GO`,
//! `RX_NEXT`, `ACCEPT`, `CLOSE` and the per-connection `STATUS` bits all
//! act on the selected handle. Connections are accepted explicitly:
//! `LISTEN` opens the listening socket, `STATUS_ACCEPT_READY` reports a
//! connection waiting in the backlog, and `ACCEPT` binds it to the
//! selected (free) handle. A command that cannot succeed — `TX_GO` or
//! `CLOSE` on an unopened handle, `ACCEPT` onto an occupied one or with
//! nothing pending, a second `LISTEN`, `RX_NEXT` with an empty queue —
//! changes nothing and sets [`STATUS_ERR`]. The full register map lives
//! in [`rabbit::nicmap`], shared with the firmware shims and the `dcc`
//! intrinsics.
//!
//! # Interrupt
//!
//! The interrupt line (priority 1, vector [`NIC_VECTOR`], enabled by
//! `IER` bit 0) is level-ish: it is asserted while any handle has a
//! received frame queued, while a connection waits in the backlog *and* a
//! free handle could accept it, or while an open handle's peer has closed
//! and its queue is drained (so the guest is woken to `CLOSE` and free
//! the handle). Service routines therefore drain *all* causes — accept,
//! echo, close — before `reti`.
//!
//! # Determinism across engines
//!
//! The bus delivers exact cycle totals at every `ioi`/`ioe` access (which
//! are barriers in the block-caching engine), but the two engines tick in
//! different chunkings. The NIC therefore advances the world and polls
//! for received data only at fixed virtual-time boundaries (every
//! [`POLL_PERIOD_US`]); boundary crossings depend only on the cycle
//! *total*, so frame chunking — and hence every guest-visible register —
//! is byte-identical under `Engine::Interpreter` and
//! `Engine::BlockCache`. The interrupt level is recomputed only at poll
//! boundaries and at register writes (both cycle-exact points); status
//! reads query the backend live, which is equally deterministic because
//! backend state only changes inside `advance` (driven by exact cycle
//! totals) or guest commands.

use std::any::Any;
use std::collections::VecDeque;

use netsim::{SimHost, SocketId};
use rabbit::{Device, Interrupt, PortRange};
use telemetry::Counter;

pub use rabbit::nicmap::{
    CMD_ACCEPT, CMD_CLOSE, CMD_LISTEN, CMD_RX_NEXT, CMD_TX_GO, MAX_CONNS, NIC_BASE, NIC_CMD,
    NIC_CONN, NIC_IER, NIC_LPORT_HI, NIC_LPORT_LO, NIC_RXLEN_HI, NIC_RXLEN_LO, NIC_RX_WINDOW,
    NIC_STATUS, NIC_TXLEN_HI, NIC_TXLEN_LO, NIC_TX_WINDOW, STATUS_ACCEPT_READY, STATUS_ERR,
    STATUS_ESTABLISHED, STATUS_LINK, STATUS_PEER_CLOSED, STATUS_RX_AVAIL, STATUS_TX_READY,
};

/// Logical address of the NIC's interrupt service routine vector.
pub const NIC_VECTOR: u16 = 0x00F0;
/// CPU cycles per microsecond of virtual time (the 30 MHz board clock).
pub const CYCLES_PER_US: u64 = 30;
/// Virtual-time period between backend polls.
pub const POLL_PERIOD_US: u64 = 50;
/// Largest frame the rings carry.
pub const FRAME_MAX: usize = 1024;
/// Receive-ring depth per handle, in frames; the backend holds further
/// data back (TCP flow control) while a handle's ring is full.
pub const RX_RING: usize = 8;

/// What the NIC plugs into: a clocked transport that produces and
/// consumes payload frames over a table of connection handles.
///
/// `advance` must be additive (`advance(a); advance(b)` ≡
/// `advance(a + b)` when no `poll` intervenes) — the NIC calls it in
/// whatever increments the CPU's tick chunking produces. Handle indices
/// are always `< MAX_CONNS` (the register file range-checks `CONN`).
pub trait NicBackend {
    /// Advances backend time by `us` microseconds.
    fn advance(&mut self, us: u64);

    /// Opens the listening socket on `port`. `false` if it could not be
    /// opened (port in use).
    fn listen(&mut self, port: u16) -> bool;

    /// Whether a connection waits in the listen backlog.
    fn accept_ready(&self) -> bool;

    /// Binds the next pending connection to `handle`. `false` if nothing
    /// was pending. The caller guarantees `handle` is free.
    fn accept(&mut self, handle: usize) -> bool;

    /// Closes and frees `handle`. The caller guarantees it is open.
    fn close(&mut self, handle: usize);

    /// Whether `handle` is bound to a connection.
    fn open(&self, handle: usize) -> bool;

    /// Takes the next available payload frame on `handle`, if any (at
    /// most [`FRAME_MAX`] bytes).
    fn poll(&mut self, handle: usize) -> Option<Vec<u8>>;

    /// Queues `frame` for transmission on `handle` (which the caller
    /// guarantees is open).
    fn send(&mut self, handle: usize, frame: &[u8]);

    /// Whether `handle`'s TCP connection is established.
    fn established(&self, handle: usize) -> bool;

    /// Whether `handle`'s peer has closed its direction.
    fn peer_closed(&self, handle: usize) -> bool;

    /// A lower bound on how far in the future (µs from the backend's
    /// current time) a [`NicBackend::poll`] could first return a frame or
    /// observe changed connection state. `Some(0)` — the default — means
    /// "unknown: treat every poll as potentially live"; `None` means
    /// nothing is in flight and no poll will ever observe anything until
    /// the guest acts. Used by the idle scheduler to extend the NIC's
    /// deadline past provably idle poll boundaries; over-conservative
    /// answers cost speed, never correctness. Relative time keeps the
    /// hint meaningful even when the backend clock (the shared world) did
    /// not start with the NIC's.
    fn next_activity_us(&self) -> Option<u64> {
        Some(0)
    }
}

/// Per-handle `net.board.conn.*` counters.
#[derive(Debug, Clone)]
pub struct ConnCounters {
    /// Connections accepted onto this handle.
    pub accepts: Counter,
    /// Bytes delivered to the guest on this handle.
    pub rx_bytes: Counter,
    /// Bytes transmitted by the guest on this handle.
    pub tx_bytes: Counter,
}

/// The `net.board.*` telemetry counters the NIC maintains.
#[derive(Debug, Clone)]
pub struct NicCounters {
    /// Frames delivered to the guest.
    pub rx_frames: Counter,
    /// Bytes delivered to the guest.
    pub rx_bytes: Counter,
    /// Frames transmitted by the guest.
    pub tx_frames: Counter,
    /// Bytes transmitted by the guest.
    pub tx_bytes: Counter,
    /// Receive interrupts raised.
    pub irqs: Counter,
    /// Commands that failed and set [`STATUS_ERR`].
    pub cmd_errors: Counter,
    /// Per-handle counters (`conn` label `"0"`..).
    pub conn: Vec<ConnCounters>,
}

/// Label values for the connection handles.
const CONN_LABELS: [&str; MAX_CONNS] = ["0", "1", "2"];

impl NicCounters {
    /// Registers the counters in `registry` under the single-board names
    /// (`net.board.*`), and aliases each cell under the board-namespaced
    /// name (`board0.net.board.*`) — so the E11–E14 snapshots keep their
    /// historical keys while fleet-era tooling can address the same cells
    /// uniformly. Idempotent: fetches the existing cells on a second
    /// call.
    pub fn register(registry: &telemetry::Registry) -> NicCounters {
        let c = NicCounters {
            rx_frames: registry.counter("net.board.rx_frames", &[]),
            rx_bytes: registry.counter("net.board.rx_bytes", &[]),
            tx_frames: registry.counter("net.board.tx_frames", &[]),
            tx_bytes: registry.counter("net.board.tx_bytes", &[]),
            irqs: registry.counter("net.board.irqs", &[]),
            cmd_errors: registry.counter("net.board.cmd_errors", &[]),
            conn: CONN_LABELS
                .iter()
                .map(|l| ConnCounters {
                    accepts: registry.counter("net.board.conn.accepts", &[("conn", l)]),
                    rx_bytes: registry.counter("net.board.conn.rx_bytes", &[("conn", l)]),
                    tx_bytes: registry.counter("net.board.conn.tx_bytes", &[("conn", l)]),
                })
                .collect(),
        };
        c.alias(registry, 0);
        c
    }

    /// Registers the counters under board-namespaced names only
    /// (`board<idx>.net.board.*`) — the fleet form, where several boards
    /// share one registry and the single-board names would collide.
    pub fn register_board(registry: &telemetry::Registry, idx: usize) -> NicCounters {
        let p = |name: &str| format!("board{idx}.{name}");
        NicCounters {
            rx_frames: registry.counter(&p("net.board.rx_frames"), &[]),
            rx_bytes: registry.counter(&p("net.board.rx_bytes"), &[]),
            tx_frames: registry.counter(&p("net.board.tx_frames"), &[]),
            tx_bytes: registry.counter(&p("net.board.tx_bytes"), &[]),
            irqs: registry.counter(&p("net.board.irqs"), &[]),
            cmd_errors: registry.counter(&p("net.board.cmd_errors"), &[]),
            conn: CONN_LABELS
                .iter()
                .map(|l| ConnCounters {
                    accepts: registry.counter(&p("net.board.conn.accepts"), &[("conn", l)]),
                    rx_bytes: registry.counter(&p("net.board.conn.rx_bytes"), &[("conn", l)]),
                    tx_bytes: registry.counter(&p("net.board.conn.tx_bytes"), &[("conn", l)]),
                })
                .collect(),
        }
    }

    /// Aliases every cell under `board<idx>.`-prefixed names.
    fn alias(&self, registry: &telemetry::Registry, idx: usize) {
        let p = |name: &str| format!("board{idx}.{name}");
        let _ = registry.alias_counter(&p("net.board.rx_frames"), &[], &self.rx_frames);
        let _ = registry.alias_counter(&p("net.board.rx_bytes"), &[], &self.rx_bytes);
        let _ = registry.alias_counter(&p("net.board.tx_frames"), &[], &self.tx_frames);
        let _ = registry.alias_counter(&p("net.board.tx_bytes"), &[], &self.tx_bytes);
        let _ = registry.alias_counter(&p("net.board.irqs"), &[], &self.irqs);
        let _ = registry.alias_counter(&p("net.board.cmd_errors"), &[], &self.cmd_errors);
        for (l, c) in CONN_LABELS.iter().zip(&self.conn) {
            let labels = [("conn", *l)];
            let _ = registry.alias_counter(&p("net.board.conn.accepts"), &labels, &c.accepts);
            let _ = registry.alias_counter(&p("net.board.conn.rx_bytes"), &labels, &c.rx_bytes);
            let _ = registry.alias_counter(&p("net.board.conn.tx_bytes"), &labels, &c.tx_bytes);
        }
    }

    /// Free-standing counters, not attached to any registry.
    pub fn detached() -> NicCounters {
        NicCounters {
            rx_frames: Counter::new(),
            rx_bytes: Counter::new(),
            tx_frames: Counter::new(),
            tx_bytes: Counter::new(),
            irqs: Counter::new(),
            cmd_errors: Counter::new(),
            conn: (0..MAX_CONNS)
                .map(|_| ConnCounters {
                    accepts: Counter::new(),
                    rx_bytes: Counter::new(),
                    tx_bytes: Counter::new(),
                })
                .collect(),
        }
    }
}

/// The NIC device.
pub struct Nic {
    backend: Box<dyn NicBackend>,
    counters: NicCounters,
    /// Per-handle receive rings.
    rx: Vec<VecDeque<Vec<u8>>>,
    tx_buf: Box<[u8; FRAME_MAX]>,
    tx_len: u16,
    listen_port: u16,
    /// Handle selected in the `CONN` register.
    conn_sel: usize,
    /// A successful `LISTEN` was issued.
    listening: bool,
    /// The previous command failed ([`STATUS_ERR`]).
    err: bool,
    irq_enabled: bool,
    irq_pending: bool,
    /// Cycles not yet converted to microseconds.
    cycle_acc: u64,
    /// Microseconds of backend time advanced so far.
    time_us: u64,
    /// Next virtual time at which the backend is polled.
    next_poll_us: u64,
}

impl Nic {
    /// A NIC wired to `backend`, with detached counters.
    pub fn new(backend: Box<dyn NicBackend>) -> Nic {
        Nic::with_counters(backend, NicCounters::detached())
    }

    /// A NIC wired to `backend`, reporting through `counters`.
    pub fn with_counters(backend: Box<dyn NicBackend>, counters: NicCounters) -> Nic {
        Nic {
            backend,
            counters,
            rx: (0..MAX_CONNS).map(|_| VecDeque::new()).collect(),
            tx_buf: Box::new([0; FRAME_MAX]),
            tx_len: 0,
            listen_port: 7,
            conn_sel: 0,
            listening: false,
            err: false,
            irq_enabled: false,
            irq_pending: false,
            cycle_acc: 0,
            time_us: 0,
            next_poll_us: POLL_PERIOD_US,
        }
    }

    /// A NIC attached to a `netsim` host under the legacy solo contract:
    /// the backend's clock drives the world ([`ClockMode::Follow`]), and
    /// the counters register under the single-board `net.board.*` names
    /// (aliased as `board0.net.board.*`).
    pub fn simulated(host: SimHost) -> Nic {
        let counters = {
            let world = host.world();
            let world = world.borrow();
            NicCounters::register(world.telemetry())
        };
        Nic::with_counters(Box::new(SimBackend::new(host)), counters)
    }

    /// A NIC attached to a `netsim` host as fleet board `idx`: the
    /// backend is a passive world participant ([`ClockMode::Passive`] —
    /// only the fleet scheduler advances time) and the counters register
    /// under `board<idx>.net.board.*` so boards sharing one registry
    /// never collide.
    pub fn fleet_attached(host: SimHost, idx: usize) -> Nic {
        let counters = {
            let world = host.world();
            let world = world.borrow();
            NicCounters::register_board(world.telemetry(), idx)
        };
        Nic::with_counters(
            Box::new(SimBackend::with_mode(host, ClockMode::Passive)),
            counters,
        )
    }

    /// The counters this NIC reports through.
    pub fn counters(&self) -> &NicCounters {
        &self.counters
    }

    /// Frames waiting in the receive rings, all handles together.
    pub fn rx_pending(&self) -> usize {
        self.rx.iter().map(VecDeque::len).sum()
    }

    /// Frames waiting in `handle`'s receive ring.
    pub fn rx_pending_on(&self, handle: usize) -> usize {
        self.rx[handle].len()
    }

    /// Handles currently bound to a connection — the board's concurrent
    /// connection count, sampled by host-side drivers.
    pub fn open_handles(&self) -> usize {
        (0..MAX_CONNS).filter(|&h| self.backend.open(h)).count()
    }

    /// Recomputes the level-ish interrupt line after a state change. Only
    /// called at deterministic points: poll boundaries and register
    /// accesses.
    fn update_irq(&mut self) {
        let any_rx = self.rx.iter().any(|r| !r.is_empty());
        let any_free = (0..MAX_CONNS).any(|h| !self.backend.open(h));
        let acceptable = any_free && self.backend.accept_ready();
        let closable = (0..MAX_CONNS).any(|h| {
            self.rx[h].is_empty() && self.backend.open(h) && self.backend.peer_closed(h)
        });
        let level = self.irq_enabled && (any_rx || acceptable || closable);
        if level && !self.irq_pending {
            self.counters.irqs.inc();
        }
        self.irq_pending = level;
    }

    /// Pulls received frames from the backend into the rings (called only
    /// at poll boundaries).
    fn poll_backend(&mut self) {
        for h in 0..MAX_CONNS {
            while self.rx[h].len() < RX_RING {
                match self.backend.poll(h) {
                    Some(frame) => {
                        self.counters.rx_frames.inc();
                        self.counters.rx_bytes.add(frame.len() as u64);
                        self.counters.conn[h].rx_bytes.add(frame.len() as u64);
                        self.rx[h].push_back(frame);
                    }
                    None => break,
                }
            }
        }
        self.update_irq();
    }

    /// Executes a `CMD` write; returns whether the command succeeded.
    fn command(&mut self, value: u8) -> bool {
        let h = self.conn_sel;
        match value {
            CMD_LISTEN => {
                if self.listening {
                    return false;
                }
                self.listening = self.backend.listen(self.listen_port);
                self.listening
            }
            CMD_TX_GO => {
                if !self.backend.open(h) {
                    return false;
                }
                let len = usize::from(self.tx_len).min(FRAME_MAX);
                self.counters.tx_frames.inc();
                self.counters.tx_bytes.add(len as u64);
                self.counters.conn[h].tx_bytes.add(len as u64);
                self.backend.send(h, &self.tx_buf[..len]);
                true
            }
            CMD_RX_NEXT => self.rx[h].pop_front().is_some(),
            CMD_ACCEPT => {
                if self.backend.open(h) {
                    return false;
                }
                let ok = self.backend.accept(h);
                if ok {
                    self.counters.conn[h].accepts.inc();
                }
                ok
            }
            CMD_CLOSE => {
                if !self.backend.open(h) {
                    return false;
                }
                self.backend.close(h);
                self.rx[h].clear();
                true
            }
            _ => false,
        }
    }
}

impl Device for Nic {
    fn name(&self) -> &'static str {
        "nic"
    }

    fn claims(&self) -> Vec<PortRange> {
        vec![
            PortRange::external(NIC_CMD, NIC_CONN),
            PortRange::external(NIC_RX_WINDOW, NIC_RX_WINDOW + FRAME_MAX as u16 - 1),
            PortRange::external(NIC_TX_WINDOW, NIC_TX_WINDOW + FRAME_MAX as u16 - 1),
        ]
    }

    fn read(&mut self, port: u16, _external: bool) -> u8 {
        let h = self.conn_sel;
        match port {
            NIC_STATUS => {
                let mut st = STATUS_LINK;
                if !self.rx[h].is_empty() {
                    st |= STATUS_RX_AVAIL;
                }
                if self.backend.open(h) {
                    st |= STATUS_TX_READY;
                }
                if self.backend.peer_closed(h) {
                    st |= STATUS_PEER_CLOSED;
                }
                if self.backend.established(h) {
                    st |= STATUS_ESTABLISHED;
                }
                if self.err {
                    st |= STATUS_ERR;
                }
                if self.backend.accept_ready() {
                    st |= STATUS_ACCEPT_READY;
                }
                st
            }
            NIC_RXLEN_LO => self.rx[h].front().map_or(0, |f| f.len() as u8),
            NIC_RXLEN_HI => self.rx[h].front().map_or(0, |f| (f.len() >> 8) as u8),
            NIC_CONN => h as u8,
            p if (NIC_RX_WINDOW..NIC_RX_WINDOW + FRAME_MAX as u16).contains(&p) => self.rx[h]
                .front()
                .and_then(|f| f.get(usize::from(p - NIC_RX_WINDOW)))
                .copied()
                .unwrap_or(0xFF),
            _ => 0xFF,
        }
    }

    fn write(&mut self, port: u16, value: u8, _external: bool) {
        match port {
            NIC_CMD => {
                let ok = self.command(value);
                if !ok {
                    self.counters.cmd_errors.inc();
                }
                self.err = !ok;
                self.update_irq();
            }
            NIC_IER => {
                self.irq_enabled = value & 1 != 0;
                self.update_irq();
            }
            NIC_CONN => {
                // Out-of-range selects nothing and flags the error.
                if usize::from(value) < MAX_CONNS {
                    self.conn_sel = usize::from(value);
                } else {
                    self.counters.cmd_errors.inc();
                    self.err = true;
                }
            }
            NIC_TXLEN_LO => self.tx_len = (self.tx_len & 0xFF00) | u16::from(value),
            NIC_TXLEN_HI => self.tx_len = (self.tx_len & 0x00FF) | (u16::from(value) << 8),
            NIC_LPORT_LO => self.listen_port = (self.listen_port & 0xFF00) | u16::from(value),
            NIC_LPORT_HI => {
                self.listen_port = (self.listen_port & 0x00FF) | (u16::from(value) << 8);
            }
            p if (NIC_TX_WINDOW..NIC_TX_WINDOW + FRAME_MAX as u16).contains(&p) => {
                self.tx_buf[usize::from(p - NIC_TX_WINDOW)] = value;
            }
            _ => {}
        }
    }

    fn tick(&mut self, cycles: u64) {
        self.cycle_acc += cycles;
        let us = self.cycle_acc / CYCLES_PER_US;
        if us == 0 {
            return;
        }
        self.cycle_acc %= CYCLES_PER_US;
        let target = self.time_us + us;
        // Advance to (and poll at) each fixed boundary the new time
        // crosses, then run the remainder without polling. Boundary
        // crossings depend only on the accumulated cycle total, never on
        // tick chunking, so both execution engines observe identical
        // frames at identical virtual times.
        while self.next_poll_us <= target {
            let step = self.next_poll_us - self.time_us;
            if step > 0 {
                self.backend.advance(step);
            }
            self.time_us = self.next_poll_us;
            self.poll_backend();
            self.next_poll_us += POLL_PERIOD_US;
        }
        if target > self.time_us {
            self.backend.advance(target - self.time_us);
            self.time_us = target;
        }
    }

    fn tick_quantum(&self) -> u64 {
        // Batch to one poll period; the bus flushes the exact total
        // before every port access anyway.
        POLL_PERIOD_US * CYCLES_PER_US
    }

    fn next_deadline(&self) -> Option<u64> {
        // The NIC only acts (polls the backend, possibly raising the rx
        // interrupt) at fixed poll boundaries, so the next observable
        // event is the first boundary at which the backend could have
        // something to say. Polls at earlier boundaries still happen
        // inside the batched tick — they just provably observe nothing,
        // because the backend reports no activity before `activity`.
        let activity = self.time_us + self.backend.next_activity_us()?;
        let mut boundary = self.next_poll_us;
        if activity > boundary {
            // Round the activity time up onto the poll grid.
            boundary += (activity - boundary).div_ceil(POLL_PERIOD_US) * POLL_PERIOD_US;
        }
        Some((boundary - self.time_us) * CYCLES_PER_US - self.cycle_acc)
    }

    fn pending(&self) -> Option<Interrupt> {
        self.irq_pending.then_some(Interrupt {
            priority: 1,
            vector: NIC_VECTOR,
        })
    }

    fn acknowledge(&mut self, _vector: u16) {
        self.irq_pending = false;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("rx_frames_queued", &self.rx_pending())
            .field("conn_sel", &self.conn_sel)
            .field("irq_pending", &self.irq_pending)
            .field("time_us", &self.time_us)
            .finish()
    }
}

/// One bound connection in the [`SimBackend`] handle table.
struct SimConn {
    sock: SocketId,
    /// Bytes the socket send buffer rejected, retried on every poll.
    pending_tx: Vec<u8>,
}

/// Who advances the shared world's clock when this backend's board
/// makes progress. The policy is chosen by whoever assembles the world —
/// the backend itself only *reports* its local time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// The legacy one-board contract: the world's clock follows this
    /// board's local clock exactly (every advance drags
    /// [`netsim::World::run_for`] along). Only valid while this board is
    /// the world's sole clock driver — the contract
    /// [`crate::fleet`] exists to replace.
    Follow,
    /// A fleet participant: advances accumulate in the backend's local
    /// clock only; the `rmc2000::fleet` scheduler owns the world's clock
    /// and moves it at epoch boundaries.
    Passive,
}

/// The production backend: a TCP-offload attachment to a `netsim` host
/// (see [`SimHost`]). One listener, a handle table of up to
/// [`MAX_CONNS`] concurrent connections; bytes a send buffer rejects are
/// retried on the next poll. The backend never decides when world time
/// moves — that is the [`ClockMode`] chosen at construction.
pub struct SimBackend {
    host: SimHost,
    mode: ClockMode,
    /// This board's local clock: microseconds of `advance` accumulated.
    local_us: u64,
    listener: Option<SocketId>,
    conns: Vec<Option<SimConn>>,
}

/// Listen backlog: connections beyond the handle table wait here until
/// the guest frees a handle (the paper's 4th and 5th clients).
const LISTEN_BACKLOG: usize = 8;

impl SimBackend {
    /// Wraps a host handle under the legacy [`ClockMode::Follow`]
    /// contract (this board drives the world's clock).
    pub fn new(host: SimHost) -> SimBackend {
        SimBackend::with_mode(host, ClockMode::Follow)
    }

    /// Wraps a host handle with an explicit clock-ownership policy.
    pub fn with_mode(host: SimHost, mode: ClockMode) -> SimBackend {
        SimBackend {
            host,
            mode,
            local_us: 0,
            listener: None,
            conns: (0..MAX_CONNS).map(|_| None).collect(),
        }
    }

    fn flush_tx(&mut self, handle: usize) {
        if let Some(conn) = self.conns[handle].as_mut() {
            if !conn.pending_tx.is_empty() {
                let sent = self.host.send(conn.sock, &conn.pending_tx);
                conn.pending_tx.drain(..sent);
            }
        }
    }
}

impl NicBackend for SimBackend {
    fn advance(&mut self, us: u64) {
        self.local_us += us;
        match self.mode {
            ClockMode::Follow => {
                // The world follows this board exactly — the legacy
                // solo contract, byte-for-byte.
                let now = self.host.now();
                if self.local_us > now {
                    self.host.advance(self.local_us - now);
                }
            }
            ClockMode::Passive => {
                // The fleet scheduler owns the clock; debug builds check
                // it kept its side of the contract (the world reaches a
                // poll boundary before any board's local clock crosses
                // it by a full period).
                debug_assert!(
                    self.local_us <= self.host.now() + POLL_PERIOD_US,
                    "fleet scheduler fell behind board local clock"
                );
            }
        }
    }

    fn listen(&mut self, port: u16) -> bool {
        if self.listener.is_none() {
            self.listener = self.host.listen(port, LISTEN_BACKLOG).ok();
        }
        self.listener.is_some()
    }

    fn accept_ready(&self) -> bool {
        self.listener.is_some_and(|l| self.host.pending(l) > 0)
    }

    fn accept(&mut self, handle: usize) -> bool {
        let Some(l) = self.listener else { return false };
        match self.host.accept(l) {
            Some(sock) => {
                self.conns[handle] = Some(SimConn {
                    sock,
                    pending_tx: Vec::new(),
                });
                true
            }
            None => false,
        }
    }

    fn close(&mut self, handle: usize) {
        if let Some(conn) = self.conns[handle].take() {
            // A graceful close still delivers what fit in the send
            // buffer; bytes beyond it are dropped with the handle.
            self.host.close(conn.sock);
        }
    }

    fn open(&self, handle: usize) -> bool {
        self.conns[handle].is_some()
    }

    fn poll(&mut self, handle: usize) -> Option<Vec<u8>> {
        self.flush_tx(handle);
        let sock = self.conns[handle].as_ref()?.sock;
        let avail = self.host.available(sock).min(FRAME_MAX);
        if avail == 0 {
            return None;
        }
        let mut frame = vec![0u8; avail];
        match self.host.recv(sock, &mut frame) {
            netsim::Recv::Data(n) => {
                frame.truncate(n);
                Some(frame)
            }
            _ => None,
        }
    }

    fn send(&mut self, handle: usize, frame: &[u8]) {
        if let Some(conn) = self.conns[handle].as_mut() {
            conn.pending_tx.extend_from_slice(frame);
        }
        self.flush_tx(handle);
    }

    fn established(&self, handle: usize) -> bool {
        self.conns[handle]
            .as_ref()
            .is_some_and(|c| self.host.established(c.sock))
    }

    fn peer_closed(&self, handle: usize) -> bool {
        self.conns[handle]
            .as_ref()
            .is_some_and(|c| self.host.peer_closed(c.sock))
    }

    fn next_activity_us(&self) -> Option<u64> {
        // Anything a poll (or the boundary's irq recomputation) would act
        // on right now?
        let any_free = self.conns.iter().any(Option::is_none);
        let live_now = self
            .conns
            .iter()
            .flatten()
            .any(|c| {
                !c.pending_tx.is_empty()
                    || self.host.available(c.sock) > 0
                    // An un-closed handle whose peer has gone keeps the
                    // boundary live so the close interrupt is latched.
                    || self.host.peer_closed(c.sock)
            })
            || (any_free && self.accept_ready());
        if live_now {
            return Some(0);
        }
        // Otherwise socket state can only change when the world processes
        // its next scheduled event (delivery, retransmit, timer) — a
        // lower bound on any observable poll. An empty event queue means
        // nothing will ever arrive until the guest transmits. The bound
        // is relative to this board's *local* clock (identical to the
        // world's under `ClockMode::Follow`; at most one epoch apart
        // under the fleet scheduler, where the hint is only consulted at
        // epoch boundaries with the clocks aligned).
        self.host
            .next_event_us()
            .map(|t| t.saturating_sub(self.local_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted backend for unit tests: frames to deliver per handle,
    /// capture of frames sent, a counter of connections waiting to be
    /// accepted.
    #[derive(Default)]
    struct Script {
        /// (deliver at µs, handle, frame)
        rx: VecDeque<(u64, usize, Vec<u8>)>,
        tx: Vec<(usize, Vec<u8>)>,
        now: u64,
        listening: Option<u16>,
        open: [bool; MAX_CONNS],
        peer_closed: [bool; MAX_CONNS],
        pending_accepts: usize,
    }

    type Shared = std::rc::Rc<std::cell::RefCell<Script>>;

    impl NicBackend for Shared {
        fn advance(&mut self, us: u64) {
            self.borrow_mut().now += us;
        }
        fn listen(&mut self, port: u16) -> bool {
            self.borrow_mut().listening = Some(port);
            true
        }
        fn accept_ready(&self) -> bool {
            self.borrow().pending_accepts > 0
        }
        fn accept(&mut self, handle: usize) -> bool {
            let mut s = self.borrow_mut();
            if s.pending_accepts == 0 {
                return false;
            }
            s.pending_accepts -= 1;
            s.open[handle] = true;
            true
        }
        fn close(&mut self, handle: usize) {
            let mut s = self.borrow_mut();
            s.open[handle] = false;
            s.peer_closed[handle] = false;
        }
        fn open(&self, handle: usize) -> bool {
            self.borrow().open[handle]
        }
        fn poll(&mut self, handle: usize) -> Option<Vec<u8>> {
            let mut s = self.borrow_mut();
            let now = s.now;
            let due = s
                .rx
                .iter()
                .position(|(t, h, _)| *t <= now && *h == handle)?;
            s.rx.remove(due).map(|(_, _, f)| f)
        }
        fn send(&mut self, handle: usize, frame: &[u8]) {
            self.borrow_mut().tx.push((handle, frame.to_vec()));
        }
        fn established(&self, handle: usize) -> bool {
            self.borrow().open[handle]
        }
        fn peer_closed(&self, handle: usize) -> bool {
            self.borrow().peer_closed[handle]
        }
    }

    fn scripted() -> (Nic, Shared) {
        let script = Shared::default();
        (Nic::new(Box::new(script.clone())), script)
    }

    /// An open connection on handle 0, as most single-connection tests
    /// start from.
    fn scripted_open() -> (Nic, Shared) {
        let (mut nic, script) = scripted();
        script.borrow_mut().pending_accepts = 1;
        nic.write(NIC_CMD, CMD_ACCEPT, true);
        assert_eq!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        (nic, script)
    }

    #[test]
    fn frames_arrive_only_at_poll_boundaries() {
        let (mut nic, script) = scripted_open();
        script.borrow_mut().rx.push_back((10, 0, b"abc".to_vec()));
        nic.write(NIC_IER, 1, true);
        // 10 µs in: frame is ready in the backend but the boundary
        // (50 µs) has not been crossed.
        nic.tick(10 * CYCLES_PER_US);
        assert_eq!(nic.rx_pending(), 0);
        assert!(rabbit::Device::pending(&nic).is_none());
        // Crossing the boundary delivers it and raises the interrupt.
        nic.tick(40 * CYCLES_PER_US);
        assert_eq!(nic.rx_pending(), 1);
        assert_eq!(
            rabbit::Device::pending(&nic),
            Some(Interrupt {
                priority: 1,
                vector: NIC_VECTOR
            })
        );
        assert_eq!(nic.counters().rx_frames.get(), 1);
        assert_eq!(nic.counters().irqs.get(), 1);
    }

    #[test]
    fn chunked_ticks_cross_boundaries_identically() {
        let (mut a, sa) = scripted_open();
        let (mut b, sb) = scripted_open();
        for s in [&sa, &sb] {
            s.borrow_mut().rx.push_back((49, 0, b"x".to_vec()));
            s.borrow_mut().rx.push_back((51, 0, b"y".to_vec()));
        }
        a.write(NIC_IER, 1, true);
        b.write(NIC_IER, 1, true);
        // One big tick vs many tiny ticks: identical delivery.
        a.tick(120 * CYCLES_PER_US);
        for _ in 0..120 * CYCLES_PER_US {
            b.tick(1);
        }
        assert_eq!(a.rx_pending(), b.rx_pending());
        assert_eq!(a.rx_pending(), 2);
        assert_eq!(sa.borrow().now, sb.borrow().now);
    }

    #[test]
    fn rx_frame_reads_and_rx_next() {
        let (mut nic, script) = scripted_open();
        script.borrow_mut().rx.push_back((0, 0, b"hi".to_vec()));
        script.borrow_mut().rx.push_back((0, 0, b"z".to_vec()));
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        assert_eq!(nic.read(NIC_RXLEN_LO, true), 2);
        assert_eq!(nic.read(NIC_RXLEN_HI, true), 0);
        assert_eq!(nic.read(NIC_RX_WINDOW, true), b'h');
        assert_eq!(nic.read(NIC_RX_WINDOW + 1, true), b'i');
        nic.write(NIC_CMD, CMD_RX_NEXT, true);
        assert_eq!(nic.read(NIC_RXLEN_LO, true), 1);
        assert_eq!(nic.read(NIC_RX_WINDOW, true), b'z');
        nic.write(NIC_CMD, CMD_RX_NEXT, true);
        assert_eq!(nic.read(NIC_STATUS, true) & STATUS_RX_AVAIL, 0);
    }

    #[test]
    fn tx_stages_and_sends() {
        let (mut nic, script) = scripted_open();
        for (i, b) in b"ping".iter().enumerate() {
            nic.write(NIC_TX_WINDOW + i as u16, *b, true);
        }
        nic.write(NIC_TXLEN_LO, 4, true);
        nic.write(NIC_TXLEN_HI, 0, true);
        nic.write(NIC_CMD, CMD_TX_GO, true);
        assert_eq!(script.borrow().tx, vec![(0, b"ping".to_vec())]);
        assert_eq!(nic.counters().tx_bytes.get(), 4);
        assert_eq!(nic.counters().conn[0].tx_bytes.get(), 4);
    }

    #[test]
    fn listen_uses_configured_port() {
        let (mut nic, script) = scripted();
        nic.write(NIC_LPORT_LO, 0x39, true);
        nic.write(NIC_LPORT_HI, 0x05, true); // 1337
        nic.write(NIC_CMD, CMD_LISTEN, true);
        assert_eq!(script.borrow().listening, Some(1337));
        assert_eq!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
    }

    #[test]
    fn ring_full_applies_backpressure_per_handle() {
        let (mut nic, script) = scripted_open();
        for _ in 0..RX_RING + 3 {
            script.borrow_mut().rx.push_back((0, 0, vec![0u8; 4]));
        }
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        assert_eq!(nic.rx_pending_on(0), RX_RING);
        assert_eq!(script.borrow().rx.len(), 3, "rest held in the backend");
    }

    #[test]
    fn conn_register_selects_handle_views() {
        let (mut nic, script) = scripted();
        script.borrow_mut().pending_accepts = 2;
        nic.write(NIC_CMD, CMD_ACCEPT, true); // handle 0
        nic.write(NIC_CONN, 1, true);
        nic.write(NIC_CMD, CMD_ACCEPT, true); // handle 1
        script.borrow_mut().rx.push_back((0, 0, b"for-zero".to_vec()));
        script.borrow_mut().rx.push_back((0, 1, b"one".to_vec()));
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        // Selected handle is 1: its frame, its length.
        assert_eq!(nic.read(NIC_CONN, true), 1);
        assert_eq!(nic.read(NIC_RXLEN_LO, true), 3);
        assert_eq!(nic.read(NIC_RX_WINDOW, true), b'o');
        // Switch to 0: the other frame.
        nic.write(NIC_CONN, 0, true);
        assert_eq!(nic.read(NIC_RXLEN_LO, true), 8);
        assert_eq!(nic.read(NIC_RX_WINDOW, true), b'f');
        // TX goes out on the selected handle.
        nic.write(NIC_CONN, 1, true);
        nic.write(NIC_TX_WINDOW, b'!', true);
        nic.write(NIC_TXLEN_LO, 1, true);
        nic.write(NIC_CMD, CMD_TX_GO, true);
        assert_eq!(script.borrow().tx, vec![(1, b"!".to_vec())]);
        assert_eq!(nic.counters().conn[1].tx_bytes.get(), 1);
        assert_eq!(nic.counters().conn[0].tx_bytes.get(), 0);
    }

    #[test]
    fn out_of_range_conn_select_sets_error() {
        let (mut nic, _script) = scripted();
        nic.write(NIC_CONN, 1, true);
        nic.write(NIC_CONN, MAX_CONNS as u8, true);
        assert_ne!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        assert_eq!(nic.read(NIC_CONN, true), 1, "selection unchanged");
    }

    #[test]
    fn commands_on_unopened_handles_error_without_side_effects() {
        let (mut nic, script) = scripted();
        // TX_GO with no connection: error, nothing sent, nothing counted.
        nic.write(NIC_TXLEN_LO, 4, true);
        nic.write(NIC_CMD, CMD_TX_GO, true);
        assert_ne!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        assert!(script.borrow().tx.is_empty());
        assert_eq!(nic.counters().tx_frames.get(), 0);
        // RX_NEXT with an empty queue: error.
        nic.write(NIC_CMD, CMD_RX_NEXT, true);
        assert_ne!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        // CLOSE on a free handle: error.
        nic.write(NIC_CMD, CMD_CLOSE, true);
        assert_ne!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        // ACCEPT with nothing pending: error.
        nic.write(NIC_CMD, CMD_ACCEPT, true);
        assert_ne!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        assert_eq!(nic.counters().cmd_errors.get(), 4);
        // A successful command clears the error bit.
        nic.write(NIC_CMD, CMD_LISTEN, true);
        assert_eq!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        // And a second LISTEN sets it again.
        nic.write(NIC_CMD, CMD_LISTEN, true);
        assert_ne!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
    }

    #[test]
    fn accept_onto_occupied_handle_errors() {
        let (mut nic, script) = scripted_open();
        script.borrow_mut().pending_accepts = 1;
        nic.write(NIC_CMD, CMD_ACCEPT, true);
        assert_ne!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        assert_eq!(
            script.borrow().pending_accepts,
            1,
            "pending connection untouched"
        );
        assert_eq!(nic.counters().conn[0].accepts.get(), 1, "only the first");
    }

    #[test]
    fn accept_ready_raises_irq_only_with_a_free_handle() {
        let (mut nic, script) = scripted();
        nic.write(NIC_IER, 1, true);
        script.borrow_mut().pending_accepts = 1;
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        assert!(
            rabbit::Device::pending(&nic).is_some(),
            "pending accept + free handle raises"
        );
        // Occupy every handle: the pending connection can no longer be
        // bound, so the line drops (no interrupt storm while saturated).
        script.borrow_mut().pending_accepts = MAX_CONNS + 1;
        for h in 0..MAX_CONNS {
            nic.write(NIC_CONN, h as u8, true);
            nic.write(NIC_CMD, CMD_ACCEPT, true);
        }
        assert!(
            rabbit::Device::pending(&nic).is_none(),
            "saturated handle table masks accept irq"
        );
        // Freeing one re-raises at the next recomputation point.
        nic.write(NIC_CMD, CMD_CLOSE, true);
        assert!(rabbit::Device::pending(&nic).is_some());
    }

    #[test]
    fn peer_close_with_drained_ring_raises_irq_until_closed() {
        let (mut nic, script) = scripted_open();
        nic.write(NIC_IER, 1, true);
        script.borrow_mut().peer_closed[0] = true;
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        assert!(rabbit::Device::pending(&nic).is_some(), "closable raises");
        nic.write(NIC_CMD, CMD_CLOSE, true);
        assert_eq!(nic.read(NIC_STATUS, true) & STATUS_ERR, 0);
        assert!(rabbit::Device::pending(&nic).is_none(), "close clears");
        assert!(!script.borrow().open[0]);
    }

    #[test]
    fn close_drops_queued_frames() {
        let (mut nic, script) = scripted_open();
        script.borrow_mut().rx.push_back((0, 0, b"stale".to_vec()));
        nic.tick(POLL_PERIOD_US * CYCLES_PER_US);
        assert_eq!(nic.rx_pending_on(0), 1);
        nic.write(NIC_CMD, CMD_CLOSE, true);
        assert_eq!(nic.rx_pending_on(0), 0);
        assert_eq!(nic.read(NIC_STATUS, true) & STATUS_RX_AVAIL, 0);
    }
}
