//! Reference end-to-end harness: assembled guest firmware on the board
//! serves TCP echo traffic to a host-side `netsim` client.
//!
//! This is the first path in the repo where guest *instructions* and
//! simulated *packets* interact: the echo firmware
//! ([`crate::firmware::echo_firmware`]) runs on the [`Board`], its NIC is
//! attached to a host in a shared [`netsim::World`], and a second host
//! plays the client. Virtual time advances only through the guest clock
//! (the NIC converts executed cycles to microseconds), so the whole
//! session — transcripts, cycle counts, telemetry — is deterministic and
//! byte-identical under both execution engines; `tests/board_echo.rs`
//! asserts exactly that.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::{Endpoint, Ipv4, LinkParams, Recv, SimHost, World};
use rabbit::{assemble, Engine};

use crate::firmware;
use crate::nic::Nic;
use crate::{Board, RunOutcome};

/// TCP port the reference firmware listens on (the echo service).
pub const ECHO_PORT: u16 = 7;

/// How the driver burns halted time between run slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleMode {
    /// Event-horizon fast-forward ([`Board::idle`]) — the default.
    FastForward,
    /// The 2-cycles-per-step reference path
    /// ([`Board::idle_stepwise`]), kept as the measured "before" of the
    /// E12 experiment and the oracle of the differential tests.
    Stepwise,
}

/// Result of one echo session.
#[derive(Debug)]
pub struct EchoRun {
    /// Everything the client received back, in order.
    pub echoed: Vec<u8>,
    /// Guest cycles consumed (including halted idle cycles).
    pub cycles: u64,
    /// Final virtual time of the shared world, in microseconds.
    pub virtual_us: u64,
    /// Frames the guest received / transmitted (`net.board.*` counters).
    pub rx_frames: u64,
    /// Frames the guest transmitted.
    pub tx_frames: u64,
    /// Deterministic text snapshot of the world's telemetry registry
    /// (includes the `net.board.*` NIC counters).
    pub snapshot: String,
}

/// Runs the reference echo session: boots the echo firmware on a board
/// with a simulated NIC, connects a client host, sends each message in
/// `msgs` (the next one only after the previous echo arrived in full),
/// and returns the transcript plus the clocks and telemetry.
///
/// # Panics
///
/// If the firmware faults, or the session does not converge within a
/// generous cycle guard.
pub fn run_echo(engine: Engine, msgs: &[&[u8]]) -> EchoRun {
    run_echo_with(engine, msgs, IdleMode::FastForward)
}

/// [`run_echo`] with an explicit idle strategy. Everything observable —
/// transcript, cycles, virtual time, `net.*` counters, `board.idle_cycles`
/// — is byte-identical across modes; only `board.skip_batches` (a count
/// of scheduler decisions, zero on the stepwise path) and host wall-clock
/// differ.
pub fn run_echo_with(engine: Engine, msgs: &[&[u8]], idle: IdleMode) -> EchoRun {
    run_echo_paced(engine, msgs, idle, 0)
}

/// [`run_echo_with`] with client think time: after each completed echo
/// the client waits `gap_us` of *virtual* time before sending the next
/// message, while the guest sits in `halt` serving nothing — the
/// idle-heavy request/response shape real serving has, and the workload
/// the E12 experiment measures. `gap_us = 0` is exactly [`run_echo_with`].
pub fn run_echo_paced(engine: Engine, msgs: &[&[u8]], idle: IdleMode, gap_us: u64) -> EchoRun {
    // One world, two hosts: the board and the client.
    let world = Rc::new(RefCell::new(World::new(42)));
    let board_host = SimHost::attach(&world, "rmc2000", Ipv4::new(10, 0, 0, 1));
    let mut client = SimHost::attach(&world, "client", Ipv4::new(10, 0, 0, 2));
    world.borrow_mut().link(
        board_host.id(),
        client.id(),
        LinkParams::ethernet_10base_t(),
    );
    let board_ip = board_host.ip();

    let mut board = Board::with_engine(engine);
    // `board.*` scheduler counters land in the world registry, next to
    // the `net.*` counters, so one snapshot covers the whole session.
    board.bind_telemetry(world.borrow().telemetry());
    board.attach_nic(Nic::simulated(board_host));
    let image = assemble(&firmware::echo_firmware(ECHO_PORT)).expect("echo firmware assembles");
    board.load(&image);
    board.set_pc(0x4000);

    // Boot: the firmware configures the NIC (port, IER, LISTEN) and
    // parks in `halt`.
    assert_eq!(board.run(10_000), RunOutcome::Halted, "firmware boots");

    // The client dials in; from here on the guest clock drives the world.
    let conn = client.connect(Endpoint::new(board_ip, ECHO_PORT));

    let expected: Vec<u8> = msgs.concat();
    let mut echoed = Vec::new();
    let mut next_msg = 0;
    let mut sent_bytes = 0;
    // Virtual time before which the client holds the next message back
    // (its think time).
    let mut ready_at_us = 0;

    // Cycle budget per run slice; idle budget (halted, peripherals
    // ticking) per slice = 100 µs; convergence guard on total cycles.
    const RUN_CHUNK: u64 = 2_000;
    const IDLE_CHUNK: u64 = 100 * crate::nic::CYCLES_PER_US;
    const MAX_CYCLES: u64 = 500_000_000;

    while echoed.len() < expected.len() {
        assert!(
            board.cpu.cycles < MAX_CYCLES,
            "echo session did not converge"
        );
        match board.run(RUN_CHUNK) {
            RunOutcome::Halted => {
                match idle {
                    IdleMode::FastForward => board.idle(IDLE_CHUNK),
                    IdleMode::Stepwise => board.idle_stepwise(IDLE_CHUNK),
                };
            }
            RunOutcome::BudgetExhausted => {}
            other => panic!("firmware stopped: {other:?}"),
        }
        // Client side: send the next message once everything sent so far
        // came back and the think time elapsed, then drain whatever the
        // echo produced.
        if next_msg < msgs.len()
            && echoed.len() == sent_bytes
            && client.now() >= ready_at_us
            && client.established(conn)
        {
            let msg = msgs[next_msg];
            assert_eq!(client.send(conn, msg), msg.len(), "client send fits");
            sent_bytes += msg.len();
            next_msg += 1;
        }
        let avail = client.available(conn);
        if avail > 0 {
            let mut buf = vec![0u8; avail];
            if let Recv::Data(n) = client.recv(conn, &mut buf) {
                buf.truncate(n);
                echoed.extend_from_slice(&buf);
            }
            if echoed.len() == sent_bytes {
                ready_at_us = client.now() + gap_us;
            }
        }
    }

    // Orderly teardown, on the same deterministic clock.
    client.close(conn);
    for _ in 0..20 {
        if board.run(RUN_CHUNK) == RunOutcome::Halted {
            match idle {
                IdleMode::FastForward => board.idle(IDLE_CHUNK),
                IdleMode::Stepwise => board.idle_stepwise(IDLE_CHUNK),
            };
        }
    }

    let (rx_frames, tx_frames, snapshot) = {
        let w = world.borrow();
        let snap = w.telemetry().snapshot();
        (
            snap.counter("net.board.rx_frames", &[]),
            snap.counter("net.board.tx_frames", &[]),
            snap.to_text(),
        )
    };
    let virtual_us = world.borrow().now();
    EchoRun {
        echoed,
        cycles: board.cpu.cycles,
        virtual_us,
        rx_frames,
        tx_frames,
        snapshot,
    }
}
