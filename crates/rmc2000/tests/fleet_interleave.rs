//! Differential property test for the fleet scheduler's core claim:
//! the per-epoch board visit order is unobservable. Any sequence of
//! permutations — applied per epoch, cycled over the whole run — must
//! produce transcripts, telemetry, virtual time, and per-board cycle
//! counts identical to the index-order baseline, on both engines.

use proptest::collection::vec;
use proptest::prelude::*;

use rabbit::Engine;
use rmc2000::{fleet_serve, FleetFirmware, FleetRun, FleetSpec, GuestClient, LbPolicy};

const BOARDS: usize = 3;

/// A permutation of `0..BOARDS` from a seed, by Fisher–Yates over a
/// tiny xorshift stream.
fn permutation(seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..BOARDS).collect();
    let mut s = seed | 1;
    for i in (1..order.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s as usize) % (i + 1));
    }
    order
}

fn spec(engine: Engine, orders: Vec<Vec<usize>>) -> FleetSpec {
    let clients = (0..2 * BOARDS)
        .map(|i| GuestClient::Plain {
            messages: vec![
                format!("interleave {i}").into_bytes(),
                format!("second message {i}").into_bytes(),
            ],
        })
        .collect();
    let mut spec = FleetSpec::new(engine, BOARDS, b"", clients);
    spec.firmware = FleetFirmware::PlainEcho;
    spec.policy = LbPolicy::LeastOpen;
    spec.probe_gap_us = Some(700);
    spec.orders = orders;
    spec
}

/// Everything a run exposes that the visit order could possibly touch.
fn observables(r: &FleetRun) -> impl std::fmt::Debug + PartialEq {
    (
        r.outcomes.clone(),
        r.snapshot.clone(),
        r.virtual_us,
        r.epochs,
        r.echoed_bytes,
        r.boards
            .iter()
            .map(|b| (b.cycles, b.instructions, b.accepts, b.serial_tx.clone()))
            .collect::<Vec<_>>(),
        r.backends.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Shuffled visit orders vs the index-order baseline, interpreter.
    #[test]
    fn shuffled_visit_order_matches_baseline(seeds in vec(0u64..1_000_000, 1..5)) {
        let orders: Vec<Vec<usize>> = seeds.into_iter().map(permutation).collect();
        let baseline = fleet_serve(&spec(Engine::Interpreter, Vec::new()));
        let shuffled = fleet_serve(&spec(Engine::Interpreter, orders));
        prop_assert_eq!(observables(&baseline), observables(&shuffled));
    }
}

/// The same invariance holds across engines: a shuffled block-cache run
/// equals the index-order interpreter run observable-for-observable.
#[test]
fn shuffled_block_cache_matches_interpreter_baseline() {
    let orders: Vec<Vec<usize>> = (0..3).map(|s| permutation(0x9E37_79B9 + s)).collect();
    let baseline = fleet_serve(&spec(Engine::Interpreter, Vec::new()));
    let shuffled = fleet_serve(&spec(Engine::BlockCache, orders));
    assert_eq!(observables(&baseline), observables(&shuffled));
}
