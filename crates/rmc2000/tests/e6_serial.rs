//! E6 (paper §5.1): the serial debugging interface. Firmware configures
//! serial port A to interrupt on a received character; the ISR either
//! replies with a status message or resets the application, preserving
//! program state — the exact behaviour the paper describes, including the
//! register-level interrupt set-up it contrasts with Unix `signal()`.

use rabbit::assemble;
use rmc2000::{Board, RunOutcome, SERIAL_A_VECTOR};

/// Firmware: main loop increments a heartbeat counter at 0x8000 forever.
/// ISR: reads the character; `s` transmits "OK\n" and a copy of the
/// heartbeat low byte; `r` restarts the main loop (application reset)
/// while keeping the heartbeat (state maintained across reset).
fn firmware() -> String {
    format!(
        "        org {SERIAL_A_VECTOR:#06x}\n\
         isr:    push af\n\
                 push hl\n\
                 ioi ld a, (0xC0)       ; read SADR\n\
                 cp 's'\n\
                 jr nz, not_status\n\
                 ld a, 'O'\n\
                 ioi ld (0xC0), a\n\
                 ld a, 'K'\n\
                 ioi ld (0xC0), a\n\
                 ld a, (0x8000)         ; heartbeat low byte\n\
                 ioi ld (0xC0), a\n\
                 jr isr_out\n\
         not_status:\n\
                 cp 'r'\n\
                 jr nz, isr_out\n\
                 ld a, 1\n\
                 ld (0x8002), a         ; reset-request flag\n\
         isr_out:\n\
                 pop hl\n\
                 pop af\n\
                 reti\n\
                 \n\
                 org 0x4000\n\
         start:  ld a, 0\n\
                 ld (0x8002), a         ; clear reset flag (heartbeat kept)\n\
                 ld a, 1\n\
                 ioi ld (0xC4), a       ; SACR: enable rx interrupt\n\
         spin:   ld hl, (0x8000)\n\
                 inc hl\n\
                 ld (0x8000), hl\n\
                 ld a, (0x8002)\n\
                 or a\n\
                 jr z, spin\n\
                 ; application reset: back to start, state maintained\n\
                 ld hl, (0x8004)\n\
                 inc hl\n\
                 ld (0x8004), hl        ; count application resets\n\
                 jp start\n"
    )
}

fn boot() -> Board {
    let image = assemble(&firmware()).expect("firmware assembles");
    let mut board = Board::new();
    board.load(&image);
    board.set_pc(0x4000);
    board
}

fn heartbeat(board: &Board) -> u16 {
    let lo = board.mem.read_phys(rmc2000::load_phys(0x8000));
    let hi = board.mem.read_phys(rmc2000::load_phys(0x8001));
    u16::from_le_bytes([lo, hi])
}

#[test]
fn status_request_interrupts_and_replies() {
    let mut board = boot();
    // Let the main loop run a while.
    assert_eq!(board.run(20_000), RunOutcome::BudgetExhausted);
    let hb_before = heartbeat(&board);
    assert!(hb_before > 0, "main loop is alive");

    // Host sends 's' over the serial line.
    board.serial_mut().inject(b's');
    assert!(
        board.run_until(100_000, |b| b.serial().transmitted().len() >= 3),
        "ISR replied"
    );
    let tx = board.serial().transmitted().to_vec();
    assert_eq!(&tx[..2], b"OK");
    // Third byte is the heartbeat snapshot — close to the live counter.
    assert_eq!(tx[2], ((heartbeat(&board) & 0xFF) as u8));

    // Main loop keeps running afterwards (reti restored everything).
    let hb_mid = heartbeat(&board);
    board.run(20_000);
    assert!(heartbeat(&board) > hb_mid, "main loop resumed after ISR");
}

#[test]
fn reset_request_restarts_application_keeping_state() {
    let mut board = boot();
    board.run(20_000);
    let hb_before = heartbeat(&board);

    board.serial_mut().inject(b'r');
    let reset_count_addr = rmc2000::load_phys(0x8004);
    assert!(
        board.run_until(200_000, |b| b.mem.read_phys(reset_count_addr) == 1),
        "application reset performed"
    );
    // The heartbeat survived the reset ("possibly maintaining program
    // state"): it keeps counting from where it was, not from zero.
    board.run(20_000);
    assert!(
        heartbeat(&board) > hb_before,
        "state maintained across reset"
    );
    assert_eq!(
        board.serial().transmitted(),
        b"",
        "no status reply for reset"
    );
}

#[test]
fn other_characters_are_ignored() {
    let mut board = boot();
    board.run(10_000);
    board.serial_mut().inject(b'x');
    board.run(50_000);
    assert!(board.serial().transmitted().is_empty());
    let hb = heartbeat(&board);
    board.run(10_000);
    assert!(heartbeat(&board) > hb, "main loop unaffected");
}

/// The serial ISR must never nest: it runs at priority 1, the same level
/// serial A requests at, so a character arriving *during* the ISR raises
/// a request that cannot preempt it — the second dispatch waits until
/// `reti` drops the priority back down.
#[test]
fn isr_does_not_reenter_but_request_redelivers() {
    let image = assemble(
        "        org 0x00E0\n\
         isr:    push af\n\
                 push hl\n\
                 ld a, (0x8010)\n\
                 inc a\n\
                 ld (0x8010), a         ; live ISR depth\n\
                 ld hl, 0x8011\n\
                 cp (hl)\n\
                 jr c, depth_ok\n\
                 ld (hl), a             ; record max depth\n\
         depth_ok:\n\
                 ld b, 20\n\
         stall:  djnz stall             ; dwell with the request pending\n\
                 ioi ld a, (0xC0)       ; drain one character\n\
                 ld a, (0x8012)\n\
                 inc a\n\
                 ld (0x8012), a         ; ISR invocation count\n\
                 ld a, (0x8010)\n\
                 dec a\n\
                 ld (0x8010), a\n\
                 pop hl\n\
                 pop af\n\
                 reti\n\
                 \n\
                 org 0x4000\n\
         start:  ld a, 1\n\
                 ioi ld (0xC4), a       ; SACR: enable rx interrupt\n\
         spin:   jr spin\n",
    )
    .expect("assembles");
    let mut board = Board::new();
    board.load(&image);
    board.set_pc(0x4000);
    board.run(5_000);

    // First character arrives; step until the CPU is inside the ISR's
    // stall loop...
    board.serial_mut().inject(b'a');
    assert!(
        board.run_until(200_000, |b| (0x00E0..0x0110).contains(&b.cpu.regs.pc)),
        "entered the ISR"
    );
    // ...then a second character arrives mid-ISR. Its request is raised
    // immediately but must not preempt the running priority-1 handler.
    board.serial_mut().inject(b'b');
    let isr_count = rmc2000::load_phys(0x8012);
    assert!(
        board.run_until(200_000, |b| b.mem.read_phys(isr_count) == 2),
        "ISR serviced both characters"
    );
    let max_depth = board.mem.read_phys(rmc2000::load_phys(0x8011));
    assert_eq!(max_depth, 1, "ISR never re-entered (priority masking)");
}

#[test]
fn unhandled_faults_are_ignored_per_the_paper() {
    // "Because our application was not designed for high reliability, we
    // simply ignored most errors."
    let image = assemble(
        "        org 0x4000\n\
                 ld b, 7\n\
                 db 0xC7                ; not a Rabbit opcode -> fault\n\
                 ld a, 9\n\
                 halt\n",
    )
    .unwrap();
    let mut board = Board::new();
    board.load(&image);
    board.set_pc(0x4000);
    assert_eq!(board.run(10_000), RunOutcome::Halted);
    assert_eq!(board.cpu.regs.a, 9, "execution continued past the fault");
    assert_eq!(board.errors.raised().len(), 1);
}

#[test]
fn error_handler_can_demand_reset() {
    let image = assemble(
        "        org 0x4000\n\
                 db 0xC7\n\
                 halt\n",
    )
    .unwrap();
    let mut board = Board::new();
    board.load(&image);
    board.set_pc(0x4000);
    board.errors.define(|_| dynamicc::Disposition::Reset);
    // After the reset, PC = 0 which holds erased flash (0xFF = invalid) —
    // the handler fires repeatedly; bound the run.
    board.run(1_000);
    assert!(board.resets >= 1);
}
