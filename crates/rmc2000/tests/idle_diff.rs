//! Differential test for the event-horizon idle scheduler: random
//! interleavings of `run`/`idle` budgets, serial injection, and client
//! TCP traffic are applied to three boards running the same firmware —
//! interpreter + stepwise idle (the pre-batching oracle), interpreter +
//! fast-forward idle, and block-cache + fast-forward idle — and every
//! observable must come out byte-identical: cycle counts, registers, RTC,
//! serial transcript, NIC counters, world clock and telemetry snapshot,
//! and the bytes the client got back.
//!
//! The firmware exercises all three deadline sources at once: the NIC
//! (poll-boundary echo ISR), the serial port (rx ISR echoing through the
//! tx shifter, so shift completions are in flight while idling), and the
//! RTC (the ISR samples `RTC0` into memory).

use std::cell::RefCell;
use std::rc::Rc;

use netsim::{Endpoint, Ipv4, LinkParams, Recv, SimHost, SocketId, World};
use proptest::prelude::*;
use rabbit::{assemble, Engine};
use rmc2000::firmware::{nic_equates, nic_isr_body, nic_shims};
use rmc2000::nic::Nic;
use rmc2000::{Board, NIC_VECTOR, SERIAL_A_VECTOR};

const PORT: u16 = 7;
/// Cycles per byte in the serial transmit shifter (on, so serial shift
/// completions bound the event horizon during idle).
const SHIFT_CYCLES: u64 = 96;
/// Where the serial ISR stores the RTC0 sample and its invocation count.
const RTC_SAMPLE: u16 = 0x8100;
const SER_COUNT: u16 = 0x8101;

/// Echo firmware extended with a serial ISR: echoes the received
/// character out the transmitter and samples the RTC into memory.
fn firmware() -> String {
    let equates = nic_equates();
    let shims = nic_shims();
    let isr_body = nic_isr_body();
    format!(
        "{equates}\
         \n\
         \x20       org {SERIAL_A_VECTOR:#06x}\n\
         \x20       jp ser_isr\n\
         \n\
         \x20       org {NIC_VECTOR:#06x}\n\
         \x20       jp nic_isr\n\
         \n\
         \x20       org 0x4000\n\
         start:\n\
         \x20       ld a, 1\n\
         \x20       ioi ld (0xC4), a        ; SACR: serial rx interrupt\n\
         \x20       ld a, {lport_lo}\n\
         \x20       ioe ld (NICPRTL), a\n\
         \x20       ld a, {lport_hi}\n\
         \x20       ioe ld (NICPRTH), a\n\
         \x20       ld a, 1\n\
         \x20       ioe ld (NICIER), a\n\
         \x20       ld a, {listen}\n\
         \x20       ioe ld (NICCMD), a\n\
         spin:\n\
         \x20       halt\n\
         \x20       jr spin\n\
         \n\
         ser_isr:\n\
         \x20       push af\n\
         \x20       ioi ld a, (0xC0)        ; read SADR\n\
         \x20       ioi ld (0xC0), a        ; echo into the tx shifter\n\
         \x20       ioi ld a, (0x02)        ; sample RTC0 (latches)\n\
         \x20       ld (0x8100), a\n\
         \x20       ld a, (0x8101)\n\
         \x20       inc a\n\
         \x20       ld (0x8101), a\n\
         \x20       pop af\n\
         \x20       reti\n\
         \n\
         nic_isr:\n\
         \x20       push af\n\
         \x20       push bc\n\
         \x20       push de\n\
         \x20       push hl\n\
         {isr_body}\
         \x20       pop hl\n\
         \x20       pop de\n\
         \x20       pop bc\n\
         \x20       pop af\n\
         \x20       reti\n\
         \n\
         {shims}",
        lport_lo = PORT & 0xFF,
        lport_hi = PORT >> 8,
        listen = rmc2000::nic::CMD_LISTEN,
    )
}

#[derive(Clone, Debug)]
enum Op {
    /// `Board::run` with this cycle budget.
    Run(u64),
    /// `Board::idle` (or `idle_stepwise` on the oracle) with this budget.
    Idle(u64),
    /// Host injects a character into serial port A.
    InjectSerial(u8),
    /// Client sends this many bytes (if its connection is established).
    ClientSend(u8),
    /// Client drains whatever echoed data is available.
    ClientDrain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (50u64..5_000).prop_map(Op::Run),
        (1u64..120_000).prop_map(Op::Idle),
        any::<u8>().prop_map(Op::InjectSerial),
        (1u8..64).prop_map(Op::ClientSend),
        Just(Op::ClientDrain),
    ]
}

struct Session {
    world: Rc<RefCell<World>>,
    board: Board,
    client: SimHost,
    conn: SocketId,
    received: Vec<u8>,
    outcomes: Vec<String>,
}

fn boot(engine: Engine) -> Session {
    let world = Rc::new(RefCell::new(World::new(42)));
    let board_host = SimHost::attach(&world, "rmc2000", Ipv4::new(10, 0, 0, 1));
    let mut client = SimHost::attach(&world, "client", Ipv4::new(10, 0, 0, 2));
    world
        .borrow_mut()
        .link(board_host.id(), client.id(), LinkParams::ethernet_10base_t());
    let board_ip = board_host.ip();

    let mut board = Board::with_engine(engine);
    board.attach_nic(Nic::simulated(board_host));
    board.serial_mut().set_tx_shift_cycles(SHIFT_CYCLES);
    let image = assemble(&firmware()).expect("firmware assembles");
    board.load(&image);
    board.set_pc(0x4000);
    let _ = board.run(20_000);

    let conn = client.connect(Endpoint::new(board_ip, PORT));
    Session {
        world,
        board,
        client,
        conn,
        received: Vec::new(),
        outcomes: Vec::new(),
    }
}

fn apply(s: &mut Session, op: &Op, stepwise: bool) {
    match *op {
        Op::Run(budget) => {
            let outcome = s.board.run(budget);
            s.outcomes.push(format!("{outcome:?}"));
        }
        Op::Idle(budget) => {
            let woke = if stepwise {
                s.board.idle_stepwise(budget)
            } else {
                s.board.idle(budget)
            };
            s.outcomes.push(format!("idle:{woke}"));
        }
        Op::InjectSerial(byte) => s.board.serial_mut().inject(byte),
        Op::ClientSend(len) => {
            if s.client.established(s.conn) {
                let data: Vec<u8> = (0..len).collect();
                let sent = s.client.send(s.conn, &data);
                s.outcomes.push(format!("send:{sent}"));
            }
        }
        Op::ClientDrain => {
            let avail = s.client.available(s.conn);
            if avail > 0 {
                let mut buf = vec![0u8; avail];
                if let Recv::Data(n) = s.client.recv(s.conn, &mut buf) {
                    buf.truncate(n);
                    s.received.extend_from_slice(&buf);
                }
            }
        }
    }
}

/// Everything observable about a finished session. `skip_batches` is
/// deliberately absent: it counts scheduler decisions, which the
/// stepwise oracle does not make — every *guest-visible* quantity below
/// must still agree.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    cycles: u64,
    instructions: u64,
    regs: String,
    halted: bool,
    rtc_cycles: u64,
    rtc_sample: u8,
    ser_count: u8,
    serial_tx: Vec<u8>,
    serial_overruns: u64,
    nic_rx_frames: u64,
    nic_tx_frames: u64,
    nic_irqs: u64,
    idle_cycles: u64,
    world_now: u64,
    snapshot: String,
    received: Vec<u8>,
    outcomes: Vec<String>,
}

fn fingerprint(mut s: Session) -> Fingerprint {
    // Deliver any quantum-deferred device time so all three paths are
    // observed at the exact same device clock.
    s.board.bus.advance(0);
    let nic = s.board.nic().expect("nic attached").counters().clone();
    let snapshot = s.world.borrow().telemetry().snapshot().to_text();
    Fingerprint {
        cycles: s.board.cpu.cycles,
        instructions: s.board.cpu.instructions,
        regs: format!("{:?}", s.board.cpu.regs),
        halted: s.board.cpu.halted,
        rtc_cycles: s.board.rtc().cycles,
        rtc_sample: s.board.mem.read_phys(rmc2000::load_phys(RTC_SAMPLE)),
        ser_count: s.board.mem.read_phys(rmc2000::load_phys(SER_COUNT)),
        serial_tx: s.board.serial().transmitted().to_vec(),
        serial_overruns: s.board.serial().overruns,
        nic_rx_frames: nic.rx_frames.get(),
        nic_tx_frames: nic.tx_frames.get(),
        nic_irqs: nic.irqs.get(),
        idle_cycles: s.board.counters.idle_cycles.get(),
        world_now: s.world.borrow().now(),
        snapshot,
        received: s.received,
        outcomes: s.outcomes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn three_paths_agree(ops in proptest::collection::vec(op_strategy(), 4..20)) {
        let mut oracle = boot(Engine::Interpreter);
        let mut interp = boot(Engine::Interpreter);
        let mut block = boot(Engine::BlockCache);
        // The random interleaving, then a deterministic settle phase so
        // in-flight round trips (handshake, echo, shifter drains)
        // complete and get compared too.
        let settle: Vec<Op> = (0..8)
            .flat_map(|_| [Op::Run(5_000), Op::Idle(150_000), Op::ClientDrain])
            .collect();
        for op in ops.iter().chain(&settle) {
            apply(&mut oracle, op, true);
            apply(&mut interp, op, false);
            apply(&mut block, op, false);
        }
        let oracle = fingerprint(oracle);
        let interp = fingerprint(interp);
        let block = fingerprint(block);
        prop_assert_eq!(&oracle, &interp, "stepwise vs fast-forward (interpreter)\nops: {:?}", &ops);
        prop_assert_eq!(&interp, &block, "interpreter vs block-cache (both fast-forward)\nops: {:?}", &ops);
        // The fast path must actually have batched when it idled.
        if oracle.idle_cycles > 0 {
            prop_assert!(
                interp.cycles > 0,
                "sanity: sessions executed"
            );
        }
    }
}
