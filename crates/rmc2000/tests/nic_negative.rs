//! Negative paths of the NIC register file, exercised from guest
//! firmware: commands against unopened handles, double `LISTEN`,
//! `RX_NEXT` on an empty queue, and an out-of-range `CONN` select are
//! deterministic no-ops that latch [`STATUS_ERR`] — and every observable
//! (recorded status bytes, error counters, cycle counts) is
//! byte-identical across both execution engines.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::{Ipv4, SimHost, World};
use rabbit::{assemble, Engine};
use rmc2000::nic::{
    Nic, CMD_CLOSE, CMD_LISTEN, CMD_RX_NEXT, CMD_TX_GO, NIC_CMD, NIC_CONN, NIC_LPORT_HI,
    NIC_LPORT_LO, NIC_STATUS, STATUS_ERR,
};
use rmc2000::{Board, RunOutcome};

/// Where the firmware records the status byte observed after each step.
const RECORD: u16 = 0x8200;

/// Issues a fixed sequence of commands — one legal, five illegal — and
/// records the status register after each one.
fn firmware() -> String {
    let steps = [
        // Legal LISTEN (port halves are set up in the prologue).
        format!("        ld a, {CMD_LISTEN}\n        ioe ld ({NIC_CMD:#06x}), a\n"),
        // LISTEN while already listening.
        format!("        ld a, {CMD_LISTEN}\n        ioe ld ({NIC_CMD:#06x}), a\n"),
        // TX_GO on a handle that was never opened.
        format!("        ld a, {CMD_TX_GO}\n        ioe ld ({NIC_CMD:#06x}), a\n"),
        // RX_NEXT with an empty receive queue.
        format!("        ld a, {CMD_RX_NEXT}\n        ioe ld ({NIC_CMD:#06x}), a\n"),
        // Out-of-range CONN select.
        format!("        ld a, 7\n        ioe ld ({NIC_CONN:#06x}), a\n"),
        // CLOSE on an unopened handle.
        format!("        ld a, {CMD_CLOSE}\n        ioe ld ({NIC_CMD:#06x}), a\n"),
    ];
    let mut body = String::new();
    for (i, step) in steps.iter().enumerate() {
        body.push_str(step);
        body.push_str(&format!(
            "        ioe ld a, ({NIC_STATUS:#06x})\n        ld ({:#06x}), a\n",
            RECORD + i as u16
        ));
    }
    format!(
        "        org 0x4000\n\
         start:\n\
         \x20       ld a, 7\n\
         \x20       ioe ld ({NIC_LPORT_LO:#06x}), a\n\
         \x20       xor a\n\
         \x20       ioe ld ({NIC_LPORT_HI:#06x}), a\n\
         {body}\
         \x20       halt\n"
    )
}

struct Outcome {
    records: Vec<u8>,
    cycles: u64,
    cmd_errors: u64,
    snapshot: String,
}

fn run(engine: Engine) -> Outcome {
    let world = Rc::new(RefCell::new(World::new(42)));
    let host = SimHost::attach(&world, "rmc2000", Ipv4::new(10, 0, 0, 1));
    let mut board = Board::with_engine(engine);
    board.attach_nic(Nic::simulated(host));
    let image = assemble(&firmware()).expect("firmware assembles");
    board.load(&image);
    board.set_pc(0x4000);
    assert_eq!(board.run(100_000), RunOutcome::Halted, "firmware halts");
    let records = (0..6)
        .map(|i| board.mem.read_phys(rmc2000::load_phys(RECORD + i)))
        .collect();
    let cmd_errors = board.nic().expect("nic").counters().cmd_errors.get();
    let snapshot = world.borrow().telemetry().snapshot().to_text();
    Outcome {
        records,
        cycles: board.cpu.cycles,
        cmd_errors,
        snapshot,
    }
}

#[test]
fn illegal_commands_latch_the_error_bit() {
    let o = run(Engine::Interpreter);
    assert_eq!(o.records[0] & STATUS_ERR, 0, "first LISTEN is legal");
    for (i, r) in o.records.iter().enumerate().skip(1) {
        assert_eq!(
            r & STATUS_ERR,
            STATUS_ERR,
            "step {i} should error, status {r:#04x}"
        );
    }
    assert_eq!(o.cmd_errors, 5, "each illegal command counted once");
}

#[test]
fn successful_command_clears_a_previous_error() {
    // ERR is a last-command flag, not sticky: LISTEN after a failed
    // command reads back clean.
    let src = format!(
        "        org 0x4000\n\
         start:\n\
         \x20       ld a, {CMD_TX_GO}\n\
         \x20       ioe ld ({NIC_CMD:#06x}), a\n\
         \x20       ld a, 7\n\
         \x20       ioe ld ({NIC_LPORT_LO:#06x}), a\n\
         \x20       xor a\n\
         \x20       ioe ld ({NIC_LPORT_HI:#06x}), a\n\
         \x20       ld a, {CMD_LISTEN}\n\
         \x20       ioe ld ({NIC_CMD:#06x}), a\n\
         \x20       ioe ld a, ({NIC_STATUS:#06x})\n\
         \x20       ld ({RECORD:#06x}), a\n\
         \x20       halt\n"
    );
    let world = Rc::new(RefCell::new(World::new(42)));
    let host = SimHost::attach(&world, "rmc2000", Ipv4::new(10, 0, 0, 1));
    let mut board = Board::with_engine(Engine::Interpreter);
    board.attach_nic(Nic::simulated(host));
    let image = assemble(&src).expect("firmware assembles");
    board.load(&image);
    board.set_pc(0x4000);
    assert_eq!(board.run(100_000), RunOutcome::Halted);
    let status = board.mem.read_phys(rmc2000::load_phys(RECORD));
    assert_eq!(status & STATUS_ERR, 0, "status {status:#04x}");
}

#[test]
fn both_engines_observe_identical_error_behaviour() {
    let a = run(Engine::Interpreter);
    let b = run(Engine::BlockCache);
    assert_eq!(a.records, b.records, "recorded status bytes");
    assert_eq!(a.cycles, b.cycles, "cycle counts");
    assert_eq!(a.cmd_errors, b.cmd_errors, "error counters");
    assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots");
}
