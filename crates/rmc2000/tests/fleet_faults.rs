//! Differential property test for the fault harness's core claim: a
//! [`FaultPlan`] is part of the *workload*, not of the execution
//! strategy. The same plan — a link flap, a board wedge with
//! resurrection, and a corrupted-frame storm — must produce
//! byte-identical transcripts, balancer books, fault reports and
//! telemetry on both CPU engines and under any per-epoch board visit
//! order, because fault events apply at epoch boundaries as a pure
//! function of virtual time.

use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;

use netsim::Corruption;
use rabbit::Engine;
use rmc2000::{fleet_faults, FaultPlan, FleetRun, FleetSpec, GuestClient};

const BOARDS: usize = 3;
const PSK: &[u8] = b"rmc2000 shared secret";

/// A permutation of `0..BOARDS` from a seed, by Fisher–Yates over a
/// tiny xorshift stream.
fn permutation(seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..BOARDS).collect();
    let mut s = seed | 1;
    for i in (1..order.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s as usize) % (i + 1));
    }
    order
}

/// One of everything: a flap on board 2's link, a wedge-and-resurrect
/// on board 1, and a MAC-targeting corruption storm on board 0's link
/// while a secure session may be riding it.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .storm(0, 10_000, 450_000, Corruption::mac_storm(issl::recmap::REC_DATA))
        .flap(2, 60_000, 140_000, 0.5)
        .wedge_resurrect(1, 150_000, 550_000)
}

fn spec(engine: Engine, orders: Vec<Vec<usize>>) -> FleetSpec {
    let clients = vec![
        GuestClient::Secure {
            messages: vec![b"storm rider".to_vec(), b"second record".to_vec()],
            psk: PSK.to_vec(),
            tamper: rmc2000::Tamper::None,
        },
        GuestClient::Plain {
            messages: vec![b"fault plain 1".to_vec()],
        },
        GuestClient::Plain {
            messages: vec![b"fault plain 2".to_vec()],
        },
        GuestClient::Plain {
            messages: vec![b"late joiner".to_vec()],
        },
    ];
    let mut spec = FleetSpec::new(engine, BOARDS, PSK, clients);
    spec.probe_gap_us = Some(900);
    spec.faults = plan();
    spec.dials = vec![0, 0, 250_000, 700_000];
    spec.lb_retry_after_us = Some(150_000);
    spec.lb_stall_timeout_us = Some(400_000);
    spec.orders = orders;
    spec
}

/// Everything a run exposes that the fault schedule or visit order
/// could possibly touch.
fn observables(r: &FleetRun) -> impl std::fmt::Debug + PartialEq {
    (
        r.outcomes.clone(),
        r.snapshot.clone(),
        r.virtual_us,
        r.epochs,
        r.echoed_bytes,
        r.boards
            .iter()
            .map(|b| {
                (
                    b.cycles,
                    b.instructions,
                    b.accepts,
                    b.alert_kinds,
                    b.serial_tx.clone(),
                )
            })
            .collect::<Vec<_>>(),
        r.backends.clone(),
        r.faults.clone(),
    )
}

fn baseline() -> &'static FleetRun {
    static BASELINE: OnceLock<FleetRun> = OnceLock::new();
    BASELINE.get_or_init(|| fleet_faults(&spec(Engine::Interpreter, Vec::new())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Shuffled per-epoch visit orders vs the index-order baseline,
    // same fault plan, interpreter.
    #[test]
    fn faulted_run_survives_visit_order_shuffle(seeds in vec(0u64..1_000_000, 1..4)) {
        let orders: Vec<Vec<usize>> = seeds.into_iter().map(permutation).collect();
        let shuffled = fleet_faults(&spec(Engine::Interpreter, orders));
        prop_assert_eq!(observables(baseline()), observables(&shuffled));
    }
}

/// The same invariance holds across engines: a shuffled block-cache
/// run under the same fault plan equals the index-order interpreter
/// run observable-for-observable.
#[test]
fn faulted_block_cache_matches_interpreter_baseline() {
    let orders: Vec<Vec<usize>> = (0..3).map(|s| permutation(0xB5A1_55ED + s)).collect();
    let shuffled = fleet_faults(&spec(Engine::BlockCache, orders));
    assert_eq!(observables(baseline()), observables(&shuffled));
}

/// The faults actually happened: the plan's six events all applied,
/// the wedge black-out cost at least one balancer failover, and the
/// run still converged with every client terminated.
#[test]
fn baseline_run_reports_injected_faults() {
    let run = baseline();
    assert_eq!(run.faults.injected(), 6, "all plan events applied");
    assert!(run.outcomes.iter().all(|o| o.established || o.error.is_some()));
    assert_eq!(run.faults.wedge_snapshots.len(), 1);
}
