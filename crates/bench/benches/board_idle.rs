//! Host-side cost of idle-heavy echo serving (E12): the same end-to-end
//! session of E11, timed under the stepwise idle reference
//! (`Board::idle_stepwise`, 2 cycles per host-visited step) and the
//! event-horizon fast-forward path (`Board::idle`). Both produce
//! byte-identical transcripts, cycle counts, and telemetry — only host
//! wall-clock differs; `examples/board_idle.rs` prints the derived
//! virtual-clock rates and asserts the identity.
//!
//! Run: `cargo bench -p bench --bench board_idle`

use criterion::{criterion_group, criterion_main, Criterion};
use rabbit::Engine;
use rmc2000::echo::{run_echo_paced, IdleMode};

/// Client think time between requests, in virtual µs (same as
/// `examples/board_idle.rs`).
const THINK_US: u64 = 10_000;

fn messages() -> Vec<&'static [u8]> {
    vec![
        b"hello rmc2000".as_slice(),
        b"0123456789abcdef".as_slice(),
        &[0x5A; 300],
        b"!".as_slice(),
    ]
}

fn bench_board_idle(c: &mut Criterion) {
    let msgs = messages();
    let mut group = c.benchmark_group("board_idle");
    group.sample_size(10);
    group.bench_function("stepwise", |b| {
        b.iter(|| run_echo_paced(Engine::BlockCache, &msgs, IdleMode::Stepwise, THINK_US));
    });
    group.bench_function("fast_forward", |b| {
        b.iter(|| run_echo_paced(Engine::BlockCache, &msgs, IdleMode::FastForward, THINK_US));
    });
    group.finish();
}

criterion_group!(benches, bench_board_idle);
criterion_main!(benches);
