//! Host-side throughput of the two execution engines on the AES
//! workload: how many simulated instructions per host second each engine
//! retires (MIPS), and the simulated-clock rate that corresponds to.
//!
//! The AES-128 hand-assembly program is assembled once; every iteration
//! then builds a fresh machine (so the block engine pays its full decode
//! cost inside the measurement) and runs it to `halt`. Both engines
//! execute the identical instruction stream and produce identical cycle
//! counts — only wall-clock differs.

use aes_rabbit::{aes128_asm_source, testbench_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use rabbit::{assemble, Cpu, Engine, Image, Memory, NullIo};
use std::time::Instant;

const BLOCKS: usize = 32;
const MAX_CYCLES: u64 = 200_000_000;

/// The standard firmware load mapping (same as `aes_rabbit`/`dcc`).
fn rmc_phys(addr: u16) -> u32 {
    if addr >= 0xE000 {
        u32::from(addr) + 0x76 * 0x1000
    } else if addr >= 0x8000 {
        u32::from(addr) + 0x78000
    } else {
        u32::from(addr)
    }
}

struct Workload {
    image: Image,
    key: [u8; 16],
    input: Vec<u8>,
}

fn workload() -> Workload {
    let (key, blocks) = testbench_workload(BLOCKS, 0xAE5);
    let image = assemble(&aes128_asm_source(BLOCKS)).expect("AES asm assembles");
    let input: Vec<u8> = blocks.iter().flatten().copied().collect();
    Workload { image, key, input }
}

fn machine(w: &Workload) -> (Cpu, Memory) {
    let mut mem = Memory::new();
    for s in &w.image.sections {
        mem.load(rmc_phys(s.addr), &s.bytes);
    }
    mem.load(rmc_phys(w.image.symbol("Akey").unwrap()), &w.key);
    mem.load(rmc_phys(w.image.symbol("Ainput").unwrap()), &w.input);
    let mut cpu = Cpu::new();
    cpu.mmu.segsize = 0xD8;
    cpu.mmu.dataseg = 0x78;
    cpu.mmu.stackseg = 0x78;
    cpu.regs.pc = 0x4000;
    (cpu, mem)
}

fn run_once(w: &Workload, engine: Engine) -> (u64, u64) {
    let (mut cpu, mut mem) = machine(w);
    cpu.run_on(engine, &mut mem, &mut NullIo, MAX_CYCLES)
        .expect("AES run faults");
    assert!(cpu.halted, "AES run must halt");
    (cpu.cycles, cpu.instructions)
}

fn bench_engines(c: &mut Criterion) {
    let w = workload();
    // Sanity: the engines must agree before we compare their speed.
    assert_eq!(run_once(&w, Engine::Interpreter), run_once(&w, Engine::BlockCache));

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(20);
    for (name, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        group.bench_function(name, |b| b.iter(|| run_once(&w, engine)));
    }
    group.finish();

    // Direct MIPS report, in the shape the EXPERIMENTS.md appendix quotes.
    println!("mips (AES-128 hand-asm, {BLOCKS} blocks, fresh machine per run):");
    let mut rates = Vec::new();
    for (name, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        let (mut runs, mut instructions, mut cycles) = (0u64, 0u64, 0u64);
        let t = Instant::now();
        while t.elapsed().as_millis() < 500 {
            let (c, i) = run_once(&w, engine);
            cycles += c;
            instructions += i;
            runs += 1;
        }
        let secs = t.elapsed().as_secs_f64();
        let mips = instructions as f64 / secs / 1e6;
        let mhz = cycles as f64 / secs / 1e6;
        println!("  {name}: {mips:.1} MIPS ({mhz:.1} sim-MHz, {runs} runs)");
        rates.push(mips);
    }
    println!("  speedup: {:.2}x", rates[1] / rates[0]);
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
