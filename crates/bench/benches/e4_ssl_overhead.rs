//! E4 (paper §2, citing Goldberg et al.): the throughput cost of the
//! secure channel vs plaintext over the same simulated wire.
//!
//! Prints virtual-time throughput (the deterministic result), then
//! Criterion-times the simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\nE4: plaintext vs issl throughput (virtual time)");
    println!(
        "{:>12} {:>14} {:>14} {:>8}",
        "bytes/conn", "plain KB/s", "issl KB/s", "ratio"
    );
    for (plain, tls) in bench::e4_sweep() {
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>7.1}x",
            plain.bytes_per_conn,
            plain.kb_per_sec,
            tls.kb_per_sec,
            plain.kb_per_sec / tls.kb_per_sec
        );
    }
    println!();

    let mut g = c.benchmark_group("e4_ssl_overhead");
    g.sample_size(10);
    g.bench_function("plain_short_connections", |b| {
        b.iter(|| bench::e4_run(black_box(false), 128, 4))
    });
    g.bench_function("issl_short_connections", |b| {
        b.iter(|| bench::e4_run(black_box(true), 128, 4))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
