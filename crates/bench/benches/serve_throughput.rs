//! Serving throughput of the sans-I/O event loop: host wall-clock per
//! complete mass-concurrency load run (N concurrent handshake+echo
//! sessions through one readiness-driven server), plus the virtual-time
//! sessions/sec and handshake-latency numbers EXPERIMENTS.md quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use issl::serve::run_load;
use issl::LoadSpec;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for n in [10usize, 100] {
        group.bench_function(format!("sessions_{n}"), |b| {
            b.iter(|| {
                let report = run_load(&LoadSpec::concurrency(n));
                assert_eq!(report.completed, n);
                report
            });
        });
    }
    group.finish();

    // The EXPERIMENTS.md table: virtual-time serving metrics per N.
    println!("event-loop serving (PSK AES-128/128, 256-byte echo):");
    for n in [10usize, 100, 1000] {
        let report = run_load(&LoadSpec::concurrency(n));
        assert_eq!(report.completed, n, "all sessions complete at N={n}");
        println!(
            "  N={n:4}: {:8.1} sessions/sec, handshake p50={}us p99={}us, {}us virtual",
            report.sessions_per_sec(),
            report.handshake_percentile_us(50.0),
            report.handshake_percentile_us(99.0),
            report.elapsed_us,
        );
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
