//! E1 (paper §6): the AES testbench — hand assembly vs the direct C port
//! on the simulated Rabbit 2000.
//!
//! The scientifically meaningful number is simulated **cycles per block**
//! (printed below, deterministic); Criterion additionally times the
//! simulator runs themselves.

use aes_rabbit::{measure, testbench_workload, Implementation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (key, blocks) = testbench_workload(bench::E1_BLOCKS, 0x5EED);
    let asm = Implementation::HandAsm;
    let cport = Implementation::CompiledC(dcc::Options::baseline());

    // The paper's table, once, on stdout.
    let ma = measure(&asm, &key, &blocks).expect("asm runs");
    let mc = measure(&cport, &key, &blocks).expect("c runs");
    println!(
        "\nE1: cycles/block  hand-asm {}  C-port {}  ratio {:.1}x\n",
        ma.cycles_per_block,
        mc.cycles_per_block,
        mc.cycles_per_block as f64 / ma.cycles_per_block as f64
    );

    let mut g = c.benchmark_group("e1_aes_rabbit");
    g.sample_size(10);
    g.bench_function("hand_assembly", |b| {
        b.iter(|| measure(black_box(&asm), black_box(&key), black_box(&blocks)).expect("runs"))
    });
    g.bench_function("c_direct_port", |b| {
        b.iter(|| measure(black_box(&cport), black_box(&key), black_box(&blocks)).expect("runs"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
