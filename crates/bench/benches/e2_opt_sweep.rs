//! E2 (paper §6): the optimization sweep over the C port — disabling
//! debugging, moving data to root memory, loop unrolling, compiler
//! optimization — "but this only improved run time by perhaps 20%".
//!
//! Prints the deterministic cycles/size table, then Criterion-times each
//! configuration's simulation.

use aes_rabbit::{measure, testbench_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (key, blocks) = testbench_workload(bench::E1_BLOCKS, 0x5EED);
    let configs = bench::aes_configurations();

    println!("\nE2/E3: optimization sweep");
    println!(
        "{:32} {:>14} {:>10}",
        "configuration", "cycles/block", "bytes"
    );
    for (label, imp) in &configs {
        let m = measure(imp, &key, &blocks).expect("runs");
        println!(
            "{:32} {:>14} {:>10}",
            label, m.cycles_per_block, m.program_bytes
        );
    }
    println!();

    let mut g = c.benchmark_group("e2_opt_sweep");
    g.sample_size(10);
    for (label, imp) in configs {
        let id = label.replace(' ', "_").replace('+', "plus");
        let blocks = blocks.clone();
        g.bench_function(id, move |b| {
            b.iter(|| measure(black_box(&imp), black_box(&key), black_box(&blocks)).expect("runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
