//! The experiment engine: one function per experiment in DESIGN.md's
//! index, shared by the `repro` binary, the Criterion benches and the
//! examples. Every function is deterministic for a given seed.

pub mod e8;
pub mod json;

pub use e8::{e8_rsa_ablation, modmul_c_source, RsaAblation};
pub use json::Json;

use std::sync::atomic::Ordering;

use aes_rabbit::{measure, testbench_workload, Implementation, Measurement};
use dynamicc::Scheduler;
use issl::host::{
    spawn_driver, spawn_plain_client, spawn_plain_echo, spawn_redirector, spawn_secure_client,
    standard_rig, ComputeCost, RedirectorConfig,
};
use issl::rmc::{spawn_rmc_server, RmcServerConfig};
use issl::{CipherSuite, ClientConfig, ClientKx, FileLog, Filesystem, ServerConfig, ServerKx};
use netsim::Endpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsa::KeyPair;

/// Standard block count for the AES testbench (keys pumped through both
/// implementations, as §6 describes).
pub const E1_BLOCKS: usize = 16;

/// One row of the E1/E2/E3 table.
#[derive(Debug, Clone)]
pub struct AesRow {
    /// Implementation label.
    pub label: String,
    /// Cycles per 16-byte block.
    pub cycles_per_block: u64,
    /// Program size in bytes (excluding workload buffers).
    pub program_bytes: usize,
}

/// Runs one AES implementation over the standard workload.
///
/// # Panics
///
/// Panics if the implementation fails to build, run, or verify — all of
/// which are bugs, not environmental conditions.
pub fn run_aes(imp: &Implementation) -> Measurement {
    let (key, blocks) = testbench_workload(E1_BLOCKS, 0x5EED);
    measure(imp, &key, &blocks).expect("AES implementation verified against FIPS reference")
}

/// The optimization sweep of E2: baseline, each switch alone, all
/// together, plus the hand assembly for reference.
pub fn aes_configurations() -> Vec<(String, Implementation)> {
    let base = dcc::Options::baseline();
    vec![
        (
            "C direct port (debug on)".into(),
            Implementation::CompiledC(base),
        ),
        (
            "C + disabling debugging".into(),
            Implementation::CompiledC(dcc::Options {
                debug: false,
                ..base
            }),
        ),
        (
            "C + data to root memory".into(),
            Implementation::CompiledC(dcc::Options {
                root_data: true,
                ..base
            }),
        ),
        (
            "C + loop unrolling".into(),
            Implementation::CompiledC(dcc::Options {
                unroll: true,
                ..base
            }),
        ),
        (
            "C + compiler optimization".into(),
            Implementation::CompiledC(dcc::Options {
                peephole: true,
                ..base
            }),
        ),
        (
            "C + all of the above".into(),
            Implementation::CompiledC(dcc::Options::all_optimizations()),
        ),
        ("hand-optimized assembly".into(), Implementation::HandAsm),
    ]
}

/// Produces the full E1/E2/E3 table.
pub fn aes_table() -> Vec<AesRow> {
    aes_configurations()
        .into_iter()
        .map(|(label, imp)| {
            let m = run_aes(&imp);
            AesRow {
                label,
                cycles_per_block: m.cycles_per_block,
                program_bytes: m.program_bytes,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E4: SSL overhead
// ---------------------------------------------------------------------

/// One measurement point of the E4 experiment.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Bytes exchanged per connection.
    pub bytes_per_conn: usize,
    /// Connections served.
    pub connections: u32,
    /// Virtual microseconds for the whole run.
    pub virtual_us: u64,
    /// Application throughput in KB per virtual second.
    pub kb_per_sec: f64,
}

fn rsa_config(seed: u64) -> ServerConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    ServerConfig {
        suites: vec![CipherSuite::AES128],
        kx: ServerKx::Rsa(KeyPair::generate(512, &mut rng)),
    }
}

/// Runs `connections` sequential request/response exchanges of
/// `bytes_per_conn` each, secure or plain, and reports virtual-time
/// throughput. The secure path pays the era-2002 crypto cost.
///
/// # Panics
///
/// Panics if any exchange fails or stalls (a bug in the stack).
pub fn e4_run(secure: bool, bytes_per_conn: usize, connections: u32) -> ThroughputPoint {
    let (net, server, client) = standard_rig(0xE4);
    let mut sched = Scheduler::new();

    if secure {
        let fs = Filesystem::new();
        let log = FileLog::new(fs, "/var/log/issl.log");
        spawn_redirector(
            &mut sched,
            &net,
            server,
            &RedirectorConfig {
                port: 443,
                backend: None,
                tls: rsa_config(7),
                workers: 2,
                seed: 77,
                compute: ComputeCost::era_2002(),
            },
            log,
        );
    } else {
        spawn_plain_echo(&mut sched, &net, server, 443, 2);
    }
    // Fine-grained driver quantum: E4 measures latency-sensitive
    // transactional exchanges, so the clock must advance in small steps.
    spawn_driver(&mut sched, &net, 100);

    let start = net.now();
    let ep = Endpoint::new(net.with(|w| w.host_ip(server)), 443);
    let payload: Vec<u8> = (0..bytes_per_conn).map(|i| (i % 251) as u8).collect();
    for c in 0..connections {
        let result = if secure {
            spawn_secure_client(
                &mut sched,
                &net,
                client,
                ep,
                ClientConfig {
                    suite: CipherSuite::AES128,
                    kx: ClientKx::Rsa,
                },
                payload.clone(),
                1024,
                1000 + u64::from(c),
            )
        } else {
            spawn_plain_client(&mut sched, &net, client, ep, payload.clone(), 1024)
        };
        let mut rounds = 0u64;
        while !result.done.load(Ordering::SeqCst) {
            assert!(
                !result.failed.load(Ordering::SeqCst),
                "connection {c} failed (secure={secure})"
            );
            sched.tick();
            rounds += 1;
            assert!(rounds < 3_000_000, "connection {c} stalled");
        }
    }
    let virtual_us = net.now() - start;
    let total_bytes = bytes_per_conn as u64 * u64::from(connections);
    ThroughputPoint {
        bytes_per_conn,
        connections,
        virtual_us,
        kb_per_sec: total_bytes as f64 / 1024.0 / (virtual_us as f64 / 1_000_000.0),
    }
}

/// The E4 sweep: request sizes from short transactional exchanges (where
/// the handshake dominates — Goldberg et al.'s order of magnitude) to
/// bulk streams (where the symmetric cipher sets the floor).
pub fn e4_sweep() -> Vec<(ThroughputPoint, ThroughputPoint)> {
    [128usize, 1024, 16 * 1024, 128 * 1024]
        .into_iter()
        .map(|size| {
            let conns = if size <= 1024 { 8 } else { 2 };
            let plain = e4_run(false, size, conns);
            let tls = e4_run(true, size, conns);
            (plain, tls)
        })
        .collect()
}

// ---------------------------------------------------------------------
// E5: the three-connection cap
// ---------------------------------------------------------------------

/// Result of the E5 run.
#[derive(Debug, Clone, Copy)]
pub struct E5Result {
    /// Clients that completed.
    pub served: u64,
    /// High-water mark of simultaneously-served connections.
    pub max_active: u64,
    /// Handler costatements compiled into the server.
    pub handlers: usize,
}

/// Runs `clients` concurrent clients against the Figure 3 server (three
/// handler costatements + one `tcp_tick` costatement).
///
/// # Panics
///
/// Panics if any client fails or the run stalls.
pub fn e5_run(clients: usize) -> E5Result {
    let (net, board, client_host) = standard_rig(0xE5);
    let stack = sockets::dynic::Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let config = RmcServerConfig::default();
    let server = spawn_rmc_server(&mut sched, &stack, &config);

    let results: Vec<_> = (0..clients)
        .map(|i| {
            spawn_secure_client(
                &mut sched,
                &net,
                client_host,
                Endpoint::new(net.with(|w| w.host_ip(board)), config.port),
                ClientConfig {
                    suite: CipherSuite::AES128,
                    kx: ClientKx::PreShared(config.psk.clone()),
                },
                vec![i as u8; 4000],
                400,
                500 + i as u64,
            )
        })
        .collect();
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0u64;
    while !results
        .iter()
        .all(|r| r.done.load(Ordering::SeqCst) || r.failed.load(Ordering::SeqCst))
    {
        sched.tick();
        rounds += 1;
        assert!(rounds < 3_000_000, "E5 run stalled");
    }
    for (i, r) in results.iter().enumerate() {
        assert!(!r.failed.load(Ordering::SeqCst), "client {i} failed");
    }
    for _ in 0..10_000 {
        sched.tick();
        if server.stats.served.load(Ordering::SeqCst) == clients as u64 {
            break;
        }
    }
    E5Result {
        served: server.stats.served.load(Ordering::SeqCst),
        max_active: server.stats.max_active.load(Ordering::SeqCst),
        handlers: config.handlers,
    }
}

/// Formats a ratio for the tables.
pub fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / b as f64
}
