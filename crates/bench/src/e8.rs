//! E8 (extension): why the port dropped RSA.
//!
//! The paper (§2, §5): "Because the RSA algorithm uses a difficult-to-port
//! bignum package, we only ported the AES cipher" — the bignum package
//! was "too complicated to rework". This ablation quantifies the decision
//! the authors made qualitatively: it ports the *core* of that package —
//! a 256-bit modular multiplication over 16-bit limbs — to the Dynamic C
//! subset, measures it on the simulated Rabbit 2000, verifies it against
//! the host bignum oracle, and extrapolates what one RSA-512 private-key
//! operation would have cost on the 30 MHz board.

use bignum::BigUint;
use crypto::Prng;

/// Limb count of the measured multiplication (16-bit limbs → 256 bits).
pub const LIMBS: usize = 16;

/// Generates the Dynamic C subset program computing
/// `r = a * b mod n` by the binary (shift-and-add) method over
/// `LIMBS`-limb numbers held in global arrays — the shape of a bignum
/// kernel a 2002 embedded port would actually write (no pointers, no
/// dynamic allocation, everything static).
pub fn modmul_c_source() -> String {
    let limbs = LIMBS;
    let ext = limbs + 1; // one limb of carry headroom
    let bits = limbs * 16;
    format!(
        "/* 256-bit modular multiplication, 16-bit limbs, issl-bignum style */\n\
         int r[{ext}];\n\
         int aa[{ext}];\n\
         int bb[{ext}];\n\
         int nn[{ext}];\n\
         \n\
         int r_ge_n() {{\n\
             int i; int j;\n\
             for (i = {ext}; i > 0; i--) {{\n\
                 j = i - 1;\n\
                 if (r[j] > nn[j]) return 1;\n\
                 if (r[j] < nn[j]) return 0;\n\
             }}\n\
             return 1;\n\
         }}\n\
         \n\
         void r_sub_n() {{\n\
             int i; int d; int d2; int brw; int b2;\n\
             brw = 0;\n\
             for (i = 0; i < {ext}; i++) {{\n\
                 d = r[i] - nn[i];\n\
                 b2 = r[i] < nn[i];\n\
                 d2 = d - brw;\n\
                 b2 = b2 | (d < brw);\n\
                 r[i] = d2;\n\
                 brw = b2;\n\
             }}\n\
         }}\n\
         \n\
         void r_reduce() {{\n\
             if (r_ge_n()) r_sub_n();\n\
         }}\n\
         \n\
         void r_dbl() {{\n\
             int i; int c; int t;\n\
             c = 0;\n\
             for (i = 0; i < {ext}; i++) {{\n\
                 t = r[i];\n\
                 r[i] = (t << 1) | c;\n\
                 c = (t >> 15) & 1;\n\
             }}\n\
             r_reduce();\n\
         }}\n\
         \n\
         void r_add_a() {{\n\
             int i; int s; int c; int c2;\n\
             c = 0;\n\
             for (i = 0; i < {ext}; i++) {{\n\
                 s = r[i] + aa[i];\n\
                 c2 = s < r[i];\n\
                 s = s + c;\n\
                 c2 = c2 | (s < c);\n\
                 r[i] = s;\n\
                 c = c2;\n\
             }}\n\
             r_reduce();\n\
         }}\n\
         \n\
         void modmul() {{\n\
             int i; int k; int w; int bit;\n\
             for (i = 0; i < {ext}; i++) r[i] = 0;\n\
             for (i = {bits}; i > 0; i--) {{\n\
                 k = i - 1;\n\
                 r_dbl();\n\
                 w = bb[k >> 4];\n\
                 bit = (w >> (k & 15)) & 1;\n\
                 if (bit) r_add_a();\n\
             }}\n\
         }}\n\
         \n\
         int main() {{\n\
             modmul();\n\
             return r[0];\n\
         }}\n"
    )
}

/// Outcome of the ablation.
#[derive(Debug, Clone)]
pub struct RsaAblation {
    /// Cycles for one verified 256-bit modular multiplication on the
    /// simulated Rabbit (compiled with every optimization enabled —
    /// giving the port its best case).
    pub modmul_cycles: u64,
    /// Estimated modular multiplications in one RSA-512 private-key
    /// operation (square-and-multiply, ~1.5 per exponent bit).
    pub rsa512_modmuls: u64,
    /// Estimated seconds per RSA-512 private-key operation at 30 MHz.
    pub rsa512_seconds: f64,
    /// Estimated seconds for the AES-128 session work the port shipped
    /// instead (one block, hand assembly, for contrast).
    pub aes_block_seconds: f64,
}

fn limbs_to_bytes(v: &BigUint) -> Vec<u8> {
    // little-endian 16-bit limbs, LIMBS+1 entries
    let be = v.to_bytes_be_padded(LIMBS * 2);
    let mut out = Vec::with_capacity((LIMBS + 1) * 2);
    for chunk in be.rchunks(2) {
        // chunk is big-endian pair; limb = chunk as u16
        let limb = match chunk.len() {
            2 => u16::from_be_bytes([chunk[0], chunk[1]]),
            _ => u16::from(chunk[0]),
        };
        out.extend_from_slice(&limb.to_le_bytes());
    }
    out.extend_from_slice(&[0, 0]); // headroom limb
    out
}

fn bytes_to_biguint(bytes: &[u8]) -> BigUint {
    // little-endian 16-bit limbs back to a big integer
    let mut be = Vec::with_capacity(bytes.len());
    for chunk in bytes.chunks(2).rev() {
        be.push(chunk.get(1).copied().unwrap_or(0));
        be.push(chunk[0]);
    }
    BigUint::from_bytes_be(&be)
}

/// Runs the ablation: build, execute, verify against the bignum oracle,
/// extrapolate.
///
/// # Panics
///
/// Panics if the kernel fails to build, run, or verify — all bugs.
pub fn e8_rsa_ablation() -> RsaAblation {
    let src = modmul_c_source();
    // The port's best case: all of the paper's optimizations on.
    let build = dcc::build(&src, dcc::Options::all_optimizations()).expect("builds");

    // Deterministic operands below a 256-bit modulus.
    let mut prng = Prng::new(0xE8);
    let mut nb = [0u8; 32];
    prng.fill(&mut nb);
    nb[0] |= 0x80; // full-size modulus
    nb[31] |= 1;
    let n = BigUint::from_bytes_be(&nb);
    let mut ab = [0u8; 32];
    let mut bbb = [0u8; 32];
    prng.fill(&mut ab);
    prng.fill(&mut bbb);
    let a = BigUint::from_bytes_be(&ab).rem(&n);
    let b = BigUint::from_bytes_be(&bbb).rem(&n);
    let expect = a.mulmod(&b, &n);

    let (mut cpu, mut mem) = build.machine();
    build.write_bytes(&mut mem, "_aa", &limbs_to_bytes(&a));
    build.write_bytes(&mut mem, "_bb", &limbs_to_bytes(&b));
    build.write_bytes(&mut mem, "_nn", &limbs_to_bytes(&n));
    build
        .run_prepared(&mut cpu, &mut mem, 2_000_000_000)
        .expect("modmul runs to completion");
    let got = bytes_to_biguint(&build.read_bytes(&mem, "_r", LIMBS * 2));
    assert_eq!(got, expect, "Rabbit modmul agrees with the bignum oracle");

    let modmul_cycles = cpu.cycles;
    // RSA-512: square-and-multiply over a 512-bit exponent = ~768
    // modular multiplications, each on 512-bit numbers. The binary
    // method scales as bits x limbs, so a 512-bit modmul costs ~4x the
    // measured 256-bit one.
    let rsa512_modmuls = 768;
    let cycles_512 = modmul_cycles * 4;
    let total = rsa512_modmuls * cycles_512;
    let rsa512_seconds = total as f64 / 30.0e6;

    let aes = crate::run_aes(&aes_rabbit::Implementation::HandAsm);
    let aes_block_seconds = aes.cycles_per_block as f64 / 30.0e6;

    RsaAblation {
        modmul_cycles,
        rsa512_modmuls,
        rsa512_seconds,
        aes_block_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modmul_kernel_verifies_and_extrapolates() {
        let r = e8_rsa_ablation();
        assert!(
            r.modmul_cycles > 100_000,
            "a real workload: {}",
            r.modmul_cycles
        );
        assert!(
            r.rsa512_seconds > 10.0,
            "RSA-512 would take {}s — the port was right to drop it",
            r.rsa512_seconds
        );
        assert!(r.aes_block_seconds < 0.01, "AES stays interactive");
    }

    #[test]
    fn limb_conversion_round_trips() {
        let n =
            BigUint::from_hex("deadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff")
                .unwrap();
        assert_eq!(bytes_to_biguint(&limbs_to_bytes(&n)[..LIMBS * 2]), n);
    }
}
