//! `repro` — regenerates every quantitative result of *Porting a Network
//! Cryptographic Service to the RMC2000* (DATE 2003) on the simulated
//! substrate and prints paper-vs-measured tables.
//!
//! ```text
//! cargo run -p bench --bin repro             # everything
//! cargo run -p bench --bin repro -- --e1     # one experiment
//! ```

use bench::{aes_table, e4_sweep, e5_run, E1_BLOCKS};

fn banner(title: &str) {
    println!();
    println!("{:=<78}", "");
    println!("{title}");
    println!("{:=<78}", "");
}

fn e1_e2_e3() {
    banner("E1/E2/E3 (paper §6): AES on the Rabbit — assembly vs C, optimizations, size");
    println!("workload: {E1_BLOCKS} random 16-byte blocks through AES-128, key schedule included");
    println!();
    println!(
        "{:32} {:>14} {:>12} {:>10}",
        "implementation", "cycles/block", "vs baseline", "bytes"
    );
    let rows = aes_table();
    let baseline = rows[0].cycles_per_block;
    let asm = rows.last().expect("has rows");
    for r in &rows {
        println!(
            "{:32} {:>14} {:>11.2}x {:>10}",
            r.label,
            r.cycles_per_block,
            baseline as f64 / r.cycles_per_block as f64,
            r.program_bytes
        );
    }
    println!();
    let ratio = baseline as f64 / asm.cycles_per_block as f64;
    println!("E1  paper: assembly faster than the C port by more than an order of magnitude");
    println!("    measured: {ratio:.1}x  ({})", verdict(ratio >= 10.0));
    let all_opt = &rows[rows.len() - 2];
    let gain = 100.0 * (1.0 - all_opt.cycles_per_block as f64 / baseline as f64);
    println!("E2  paper: all source/compiler optimizations buy only ~20%");
    println!(
        "    measured: {gain:.0}% combined improvement; optimized C still {:.1}x slower than assembly  ({})",
        all_opt.cycles_per_block as f64 / asm.cycles_per_block as f64,
        verdict(all_opt.cycles_per_block as f64 / asm.cycles_per_block as f64 > 4.0)
    );
    let shrink = 100.0 * (1.0 - asm.program_bytes as f64 / rows[0].program_bytes as f64);
    println!("E3  paper: assembly 9% smaller than C; size uncorrelated with speed");
    println!(
        "    measured: assembly {shrink:.0}% smaller than the C baseline; the fastest C build\n    is also the largest (unrolled) while the smallest is mid-pack  ({})",
        verdict(asm.program_bytes < rows[0].program_bytes)
    );
}

fn e4() {
    banner("E4 (paper §2, Goldberg et al.): SSL reduces throughput by an order of magnitude");
    println!(
        "{:>12} {:>6} {:>14} {:>14} {:>8}",
        "bytes/conn", "conns", "plain KB/s", "issl KB/s", "ratio"
    );
    let mut short_ratio = 0.0;
    for (plain, tls) in e4_sweep() {
        let ratio = plain.kb_per_sec / tls.kb_per_sec;
        if plain.bytes_per_conn == 128 {
            short_ratio = ratio;
        }
        println!(
            "{:>12} {:>6} {:>14.1} {:>14.1} {:>7.1}x",
            plain.bytes_per_conn, plain.connections, plain.kb_per_sec, tls.kb_per_sec, ratio
        );
    }
    println!();
    println!("paper: transactional SSL costs an order of magnitude of throughput;");
    println!(
        "measured: {short_ratio:.1}x on short connections, shrinking on bulk streams  ({})",
        verdict(short_ratio >= 5.0)
    );
}

fn e5() {
    banner("E5 (paper §5.3, Figure 3): at most three simultaneous connections");
    let r = e5_run(5);
    println!(
        "handlers compiled in: {}   clients offered: 5   served: {}   max simultaneous: {}",
        r.handlers, r.served, r.max_active
    );
    println!();
    println!("paper: three handler costatements allow a maximum of three connections;");
    println!(
        "measured: high-water mark {} with all 5 clients eventually served  ({})",
        r.max_active,
        verdict(r.max_active <= 3 && r.served == 5)
    );
}

fn e8() {
    banner("E8 (extension): why the port dropped RSA (paper §2/§5)");
    let r = bench::e8_rsa_ablation();
    println!(
        "256-bit modular multiplication, compiled C (all optimizations): {} cycles",
        r.modmul_cycles
    );
    println!(
        "one RSA-512 private-key operation ≈ {} modmuls ≈ {:.0} s ({:.1} min) at 30 MHz",
        r.rsa512_modmuls,
        r.rsa512_seconds,
        r.rsa512_seconds / 60.0
    );
    println!(
        "the AES-128 the port shipped instead: {:.2} ms per block in hand assembly",
        r.aes_block_seconds * 1000.0
    );
    println!();
    println!("paper: RSA's bignum package was \"too complicated to rework\" and was dropped;");
    println!(
        "measured: a single handshake-grade RSA operation would stall the board for minutes  ({})",
        verdict(r.rsa512_seconds > 60.0)
    );
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "shape REPRODUCED"
    } else {
        "shape NOT reproduced"
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    println!("repro — Porting a Network Cryptographic Service to the RMC2000 (DATE 2003)");
    println!("substrate: simulated Rabbit 2000 + deterministic network (see DESIGN.md)");

    if want("--e1") || want("--e2") || want("--e3") {
        e1_e2_e3();
    }
    if want("--e4") {
        e4();
    }
    if want("--e5") {
        e5();
    }
    if want("--e8") {
        e8();
    }
    println!();
}
