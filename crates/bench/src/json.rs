//! Hand-rolled JSON emission for the `BENCH_*.json` artifacts.
//!
//! The workspace deliberately carries no serde; every benchmark example
//! used to roll its own string concatenation instead. This module is
//! the one shared emitter: a tiny value tree ([`Json`]) with a builder
//! API, rendered pretty-printed with two-space indents and a trailing
//! newline — exactly what the checked-in `BENCH_*.json` files hold.
//!
//! Floats carry an explicit decimal count so the output is stable
//! digit-for-digit across runs and platforms.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (cycle counts, byte counts, ...).
    U64(u64),
    /// A float printed with exactly `decimals` fractional digits.
    F64 {
        /// The value.
        value: f64,
        /// Fractional digits to print.
        decimals: usize,
    },
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; fields render in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object to chain [`Json::field`] onto.
    #[must_use]
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// A float rendered with `decimals` fractional digits.
    #[must_use]
    pub fn f64(value: f64, decimals: usize) -> Json {
        Json::F64 { value, decimals }
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// If `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on a non-object: {other:?}"),
        }
        self
    }

    /// Renders the tree pretty-printed with a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, s: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => s.push_str(&v.to_string()),
            Json::F64 { value, decimals } => {
                s.push_str(&format!("{value:.decimals$}"));
            }
            Json::Str(v) => {
                s.push('"');
                for c in v.chars() {
                    match c {
                        '"' => s.push_str("\\\""),
                        '\\' => s.push_str("\\\\"),
                        '\n' => s.push_str("\\n"),
                        c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
                        c => s.push(c),
                    }
                }
                s.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    s.push_str("[]");
                    return;
                }
                s.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    s.push_str(&"  ".repeat(indent + 1));
                    item.write(s, indent + 1);
                    s.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                s.push_str(&"  ".repeat(indent));
                s.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    s.push_str("{}");
                    return;
                }
                s.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    s.push_str(&"  ".repeat(indent + 1));
                    s.push('"');
                    s.push_str(k);
                    s.push_str("\": ");
                    v.write(s, indent + 1);
                    s.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                s.push_str(&"  ".repeat(indent));
                s.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::U64(u64::from(v))
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_tree_deterministically() {
        let doc = Json::obj()
            .field("experiment", "E0")
            .field("count", 3usize)
            .field("ratio", Json::f64(1.0 / 3.0, 2))
            .field("ok", true)
            .field(
                "rows",
                vec![
                    Json::obj().field("name", "a\"b"),
                    Json::obj().field("empty", Json::Array(Vec::new())),
                ],
            );
        assert_eq!(
            doc.render(),
            "{\n  \"experiment\": \"E0\",\n  \"count\": 3,\n  \"ratio\": 0.33,\n  \"ok\": true,\n  \"rows\": [\n    {\n      \"name\": \"a\\\"b\"\n    },\n    {\n      \"empty\": []\n    }\n  ]\n}\n"
        );
    }
}
