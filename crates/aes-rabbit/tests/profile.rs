//! Profiler smoke tests over the AES workloads (also run as the CI
//! `telemetry-smoke` job): at least 95% of retired cycles must resolve to
//! a named symbol on both the compiled-C and hand-assembly
//! implementations, and two identically-seeded runs must produce
//! byte-identical profile JSON.

use aes_rabbit::{measure_profiled, testbench_workload, Implementation};

fn attribution_for(imp: &Implementation) -> (f64, String) {
    let (key, blocks) = testbench_workload(2, 1903);
    let p = measure_profiled(imp, &key, &blocks).expect("profiled run");
    assert_eq!(
        p.report.total, p.measurement.cycles_total,
        "every retired cycle is in the profile"
    );
    (p.report.attributed_fraction(), p.report.to_json())
}

#[test]
fn compiled_c_attributes_95_percent() {
    let imp = Implementation::CompiledC(dcc::Options::baseline());
    let (fraction, _) = attribution_for(&imp);
    assert!(
        fraction >= 0.95,
        "C cycles attributed to named symbols: {:.4} < 0.95",
        fraction
    );
}

#[test]
fn hand_asm_attributes_95_percent() {
    let (fraction, _) = attribution_for(&Implementation::HandAsm);
    assert!(
        fraction >= 0.95,
        "asm cycles attributed to named symbols: {:.4} < 0.95",
        fraction
    );
}

#[test]
fn profiles_are_deterministic_across_runs() {
    for imp in [
        Implementation::CompiledC(dcc::Options::all_optimizations()),
        Implementation::HandAsm,
    ] {
        let (_, a) = attribution_for(&imp);
        let (_, b) = attribution_for(&imp);
        assert_eq!(a, b, "same seed, byte-identical profile JSON");
    }
}

#[test]
fn c_profile_names_the_round_functions() {
    let (key, blocks) = testbench_workload(1, 7);
    let p = measure_profiled(
        &Implementation::CompiledC(dcc::Options::baseline()),
        &key,
        &blocks,
    )
    .expect("profiled run");
    // The dcc-compiled image labels each C function `_name`; the heavy
    // hitters of the cipher must show up as distinct rows.
    let names: Vec<&str> = p.report.rows.iter().map(|r| r.symbol.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with('_')),
        "per-function rows present: {names:?}"
    );
    // The flamegraph export nests at least one call (main -> cipher).
    assert!(
        p.report.collapsed().lines().any(|l| l.contains(';')),
        "call-stack nesting recorded:\n{}",
        p.report.collapsed()
    );
}
