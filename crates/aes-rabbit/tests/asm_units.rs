//! Unit tests for the individual hand-assembly AES routines: each is
//! called in isolation on a prepared machine and compared against the
//! reference implementation's intermediate state.

use aes_rabbit::aes128_asm_source;
use crypto::gf;
use rabbit::{assemble, Cpu, Image, Memory, NullIo};

fn rmc_phys(addr: u16) -> u32 {
    if addr >= 0xE000 {
        u32::from(addr) + 0x76 * 0x1000
    } else if addr >= 0x8000 {
        u32::from(addr) + 0x78000
    } else {
        u32::from(addr)
    }
}

struct Rig {
    image: Image,
    cpu: Cpu,
    mem: Memory,
}

impl Rig {
    fn new() -> Rig {
        let src = aes128_asm_source(1);
        let image = assemble(&src).expect("asm assembles");
        let mut mem = Memory::new();
        for s in &image.sections {
            mem.load(rmc_phys(s.addr), &s.bytes);
        }
        let mut cpu = Cpu::new();
        cpu.mmu.segsize = 0xD8;
        cpu.mmu.dataseg = 0x78;
        cpu.mmu.stackseg = 0x78;
        cpu.regs.sp = 0xDFF0;
        Rig { image, cpu, mem }
    }

    fn write(&mut self, sym: &str, data: &[u8]) {
        let addr = self
            .image
            .symbol(sym)
            .unwrap_or_else(|| panic!("symbol {sym}"));
        self.mem.load(rmc_phys(addr), data);
    }

    fn read(&self, sym: &str, len: usize) -> Vec<u8> {
        let addr = self
            .image
            .symbol(sym)
            .unwrap_or_else(|| panic!("symbol {sym}"));
        self.mem.dump(rmc_phys(addr), len)
    }

    /// Calls `routine` and runs until the CPU halts (returns to `done:`).
    fn call(&mut self, routine: &str) {
        let target = self.image.symbol(routine).expect("routine symbol");
        let done = self.image.symbol("done").expect("done symbol");
        self.cpu.halted = false;
        // push the return address (points at `halt`)
        self.cpu.regs.sp = 0xDFF0 - 2;
        let sp_phys = rmc_phys(self.cpu.regs.sp);
        self.mem.write_phys(sp_phys, (done & 0xFF) as u8);
        self.mem.write_phys(sp_phys + 1, (done >> 8) as u8);
        self.cpu.regs.pc = target;
        self.cpu
            .run(&mut self.mem, &mut NullIo, 10_000_000)
            .expect("no fault");
        assert!(self.cpu.halted, "routine {routine} returned");
    }
}

/// Reference AES-128 key schedule, byte-oriented.
fn ref_key_schedule(key: &[u8; 16]) -> Vec<u8> {
    let mut w = key.to_vec();
    let mut rcon: u8 = 1;
    for i in (16..176).step_by(4) {
        let mut t = [w[i - 4], w[i - 3], w[i - 2], w[i - 1]];
        if i % 16 == 0 {
            t = [
                gf::sbox(t[1]) ^ rcon,
                gf::sbox(t[2]),
                gf::sbox(t[3]),
                gf::sbox(t[0]),
            ];
            rcon = gf::xtime(rcon);
        }
        for k in 0..4 {
            let b = w[i - 16 + k] ^ t[k];
            w.push(b);
        }
    }
    w
}

#[test]
fn tables_are_loaded_correctly() {
    let rig = Rig::new();
    let sbox = rig.read("Asbox", 256);
    let xt = rig.read("Axt", 256);
    for i in 0..=255u8 {
        assert_eq!(sbox[usize::from(i)], gf::sbox(i), "sbox[{i}]");
        assert_eq!(xt[usize::from(i)], gf::xtime(i), "xt[{i}]");
    }
    // alignment: tables must sit on 256-byte pages for the ld l,a trick
    assert_eq!(rig.image.symbol("Asbox").unwrap() & 0xFF, 0);
    assert_eq!(rig.image.symbol("Axt").unwrap() & 0xFF, 0);
}

#[test]
fn key_expansion_matches_reference() {
    let mut rig = Rig::new();
    let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(7).wrapping_add(3));
    rig.write("Akey", &key);
    rig.call("expand");
    let got = rig.read("Arkeys", 176);
    let expect = ref_key_schedule(&key);
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert_eq!(g, e, "round key byte {i} (word {})", i / 4);
    }
}

#[test]
fn subshift_is_subbytes_then_shiftrows() {
    let mut rig = Rig::new();
    let state: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(23).wrapping_add(9));
    rig.write("Astate", &state);
    rig.call("subshift");
    let got = rig.read("Astate", 16);
    // column-major layout s[4c+r]; row r shifted left by r, then sbox
    let mut expect = [0u8; 16];
    for c in 0..4 {
        for r in 0..4 {
            expect[4 * c + r] = gf::sbox(state[4 * ((c + r) % 4) + r]);
        }
    }
    assert_eq!(got, expect);
}

#[test]
fn mixcols_matches_reference() {
    let mut rig = Rig::new();
    let state: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(31).wrapping_add(5));
    rig.write("Astate", &state);
    rig.call("mixcols");
    let got = rig.read("Astate", 16);
    let mut expect = [0u8; 16];
    for c in 0..4 {
        let col = &state[4 * c..4 * c + 4];
        for r in 0..4 {
            expect[4 * c + r] = gf::mul(2, col[r])
                ^ gf::mul(3, col[(r + 1) % 4])
                ^ col[(r + 2) % 4]
                ^ col[(r + 3) % 4];
        }
    }
    assert_eq!(got, expect);
}

#[test]
fn ark_xors_round_key() {
    let mut rig = Rig::new();
    let state = [0xAAu8; 16];
    let rk: [u8; 16] = core::array::from_fn(|i| i as u8);
    rig.write("Astate", &state);
    rig.write("Arkeys", &rk);
    // ark expects ix = Arkeys
    let arkeys = rig.image.symbol("Arkeys").unwrap();
    rig.cpu.regs.ix = arkeys;
    rig.call("ark");
    let got = rig.read("Astate", 16);
    for (i, g) in got.iter().enumerate() {
        assert_eq!(*g, 0xAA ^ (i as u8), "byte {i}");
    }
}
