//! Layout regression guard for the linkable module: firmware that links
//! it budgets compiled C code up to `LINKED_CODE_ORG`, so the module
//! must keep its code inside `[LINKED_CODE_ORG, LINKED_TABLES_ORG)` and
//! its tables below the root-data boundary.

use aes_rabbit::{aes128_linked_module, LINKED_CODE_ORG, LINKED_DATA_ORG, LINKED_TABLES_ORG};

#[test]
fn module_fits_its_reserved_windows() {
    // The module references the two C glue globals; stand them in.
    let module = format!(
        "        org 0xCC00\n_aes_key: ds 16\n_aes_blk: ds 16\n{}",
        aes128_linked_module()
    );
    let img = rabbit::assemble(&module).expect("module assembles");
    for s in img.sections.iter().filter(|s| s.addr != 0xCC00) {
        let end = usize::from(s.addr) + s.bytes.len();
        if s.addr >= LINKED_DATA_ORG {
            assert!(end <= 0xE000, "workspace runs into xmem: end {end:#06x}");
        } else if s.addr >= LINKED_TABLES_ORG {
            assert!(
                end <= usize::from(dcc::layout::ROOT_DATA_ORG),
                "tables run into root data: end {end:#06x}"
            );
        } else {
            assert!(s.addr >= LINKED_CODE_ORG, "code below its org: {:#06x}", s.addr);
            assert!(
                end <= usize::from(LINKED_TABLES_ORG),
                "module code runs into the tables: end {end:#06x}"
            );
        }
    }
}
