//! AES-128 in hand-optimized Rabbit 2000 assembly — the counterpart of
//! the "hand-coded assembly version supplied by Rabbit Semiconductor"
//! that the paper's testbench measured the C port against (§6).
//!
//! The hand optimizations are the classic ones for a Z80-family part:
//!
//! * 256-byte-aligned S-box and xtime tables so a lookup is two short
//!   instructions with the table page held in a register;
//! * SubBytes fused into ShiftRows: one pass over the state per round
//!   instead of two, fully unrolled with constant addresses;
//! * AddRoundKey unrolled over all 16 bytes (pointer walk, indexed key);
//! * MixColumns with register-resident columns, xtime by table, all four
//!   columns unrolled;
//! * the key schedule's word loop unrolled;
//! * no per-statement debugger hooks, everything in root memory.
//!
//! The unrolled sequences are generated programmatically below — exactly
//! how a careful assembly programmer uses an editor macro.

use crypto::gf;

fn db_table(label: &str, values: impl Iterator<Item = u8>) -> String {
    let vals: Vec<String> = values.map(|v| format!("{v:#04x}")).collect();
    let mut out = format!("{label}:\n");
    for chunk in vals.chunks(16) {
        out.push_str("        db ");
        out.push_str(&chunk.join(", "));
        out.push('\n');
    }
    out
}

/// One S-box lookup of `Astate+src`, leaving the substituted byte in A.
/// The aligned form assumes D holds the S-box page (two instructions);
/// the unaligned form must do full 16-bit address arithmetic — the
/// ablation that shows why hand optimizers burn 256 bytes of padding on
/// page alignment.
fn lookup(src: usize, aligned: bool) -> String {
    if aligned {
        format!("        ld a, (Astate+{src})\n        ld e, a\n        ld a, (de)\n")
    } else {
        format!(
            "        ld a, (Astate+{src})\n        ld l, a\n        ld h, 0\n        ld de, Asbox\n        add hl, de\n        ld a, (hl)\n"
        )
    }
}

/// The fused SubBytes+ShiftRows pass, fully unrolled. D must be loaded
/// with the S-box page by the caller sequence (we do it locally).
fn subshift(aligned: bool) -> String {
    let mut s = String::from("subshift:\n");
    if aligned {
        s.push_str("        ld d, hi(Asbox)\n");
    }
    // Row 0: no rotation, substitute in place.
    for c in [0usize, 4, 8, 12] {
        s.push_str(&lookup(c, aligned));
        s.push_str(&format!("        ld (Astate+{c}), a\n"));
    }
    // Row 1: left-rotate by 1 (1 <- 5 <- 9 <- 13 <- 1), substituting.
    s.push_str(&lookup(1, aligned));
    s.push_str("        ld b, a\n");
    for (dst, src) in [(1usize, 5usize), (5, 9), (9, 13)] {
        s.push_str(&lookup(src, aligned));
        s.push_str(&format!("        ld (Astate+{dst}), a\n"));
    }
    s.push_str("        ld a, b\n        ld (Astate+13), a\n");
    // Row 2: swap 2<->10 and 6<->14, substituting.
    for (x, y) in [(2usize, 10usize), (6, 14)] {
        s.push_str(&lookup(x, aligned));
        s.push_str("        ld b, a\n");
        s.push_str(&lookup(y, aligned));
        s.push_str(&format!("        ld (Astate+{x}), a\n"));
        s.push_str(&format!("        ld a, b\n        ld (Astate+{y}), a\n"));
    }
    // Row 3: right-rotate by 1 (3 <- 15 <- 11 <- 7 <- 3), substituting.
    s.push_str(&lookup(3, aligned));
    s.push_str("        ld b, a\n");
    for (dst, src) in [(3usize, 15usize), (15, 11), (11, 7)] {
        s.push_str(&lookup(src, aligned));
        s.push_str(&format!("        ld (Astate+{dst}), a\n"));
    }
    s.push_str("        ld a, b\n        ld (Astate+7), a\n");
    s.push_str("        ret\n");
    s
}

/// AddRoundKey, unrolled: state ^= rkeys[IX..IX+16], IX advanced by 16.
fn ark() -> String {
    let mut s = String::from("ark:    ld hl, Astate\n");
    for i in 0..16 {
        s.push_str(&format!(
            "        ld a, (hl)\n        xor (ix+{i})\n        ld (hl), a\n"
        ));
        if i != 15 {
            s.push_str("        inc hl\n");
        }
    }
    s.push_str("        ld de, 16\n        add ix, de\n        ret\n");
    s
}

/// MixColumns over all four columns, unrolled; IX (round-key cursor) is
/// preserved, IY walks the state.
fn mixcols() -> String {
    let mut s = String::from("mixcols:\n        ld iy, Astate\n        ld h, hi(Axt)\n");
    for col in 0..4 {
        let base = col * 4;
        s.push_str(&format!(
            "        ld b, (iy+{})\n        ld c, (iy+{})\n        ld d, (iy+{})\n        ld e, (iy+{})\n",
            base, base + 1, base + 2, base + 3
        ));
        // out[r] = xt(a[r] ^ a[r+1]) ^ a[r+1] ^ a[r+2] ^ a[r+3]
        let regs = ["b", "c", "d", "e"];
        for r in 0..4 {
            let a0 = regs[r];
            let a1 = regs[(r + 1) % 4];
            let a2 = regs[(r + 2) % 4];
            let a3 = regs[(r + 3) % 4];
            s.push_str(&format!(
                "        ld a, {a0}\n        xor {a1}\n        ld l, a\n        ld a, (hl)\n        xor {a1}\n        xor {a2}\n        xor {a3}\n        ld (iy+{}), a\n",
                base + r
            ));
        }
    }
    s.push_str("        ret\n");
    s
}

/// Generates the standalone assembly program: expand the key at `Akey`,
/// encrypt `nblocks` blocks from `Ainput` into `Aoutput`, halt.
///
/// # Panics
///
/// Panics unless `1 <= nblocks <= 255`.
pub fn aes128_asm_source(nblocks: usize) -> String {
    aes128_asm_source_with(nblocks, true)
}

/// The alignment ablation: the same hand assembly with the S-box at an
/// *unaligned* address, forcing every lookup through 16-bit address
/// arithmetic instead of a page-register trick.
pub fn aes128_asm_source_unaligned(nblocks: usize) -> String {
    aes128_asm_source_with(nblocks, false)
}

/// One inverse-S-box lookup of `Astate+src` into A; D holds the
/// `Aisbox` page (the module is always built page-aligned).
fn lookup_inv(src: usize) -> String {
    format!("        ld a, (Astate+{src})\n        ld e, a\n        ld a, (de)\n")
}

/// InvShiftRows fused with InvSubBytes, one unrolled pass — the mirror
/// of [`subshift`], rotating each row the opposite way through the
/// inverse S-box.
fn invsubshift() -> String {
    let mut s = String::from("invsubshift:\n        ld d, hi(Aisbox)\n");
    // Row 0: no rotation.
    for c in [0usize, 4, 8, 12] {
        s.push_str(&lookup_inv(c));
        s.push_str(&format!("        ld (Astate+{c}), a\n"));
    }
    // Row 1: right-rotate by 1 (1 <- 13 <- 9 <- 5 <- 1), substituting.
    s.push_str(&lookup_inv(1));
    s.push_str("        ld b, a\n");
    for (dst, src) in [(1usize, 13usize), (13, 9), (9, 5)] {
        s.push_str(&lookup_inv(src));
        s.push_str(&format!("        ld (Astate+{dst}), a\n"));
    }
    s.push_str("        ld a, b\n        ld (Astate+5), a\n");
    // Row 2: swap 2<->10 and 6<->14 (self-inverse), substituting.
    for (x, y) in [(2usize, 10usize), (6, 14)] {
        s.push_str(&lookup_inv(x));
        s.push_str("        ld b, a\n");
        s.push_str(&lookup_inv(y));
        s.push_str(&format!("        ld (Astate+{x}), a\n"));
        s.push_str(&format!("        ld a, b\n        ld (Astate+{y}), a\n"));
    }
    // Row 3: left-rotate by 1 (3 <- 7 <- 11 <- 15 <- 3), substituting.
    s.push_str(&lookup_inv(3));
    s.push_str("        ld b, a\n");
    for (dst, src) in [(3usize, 7usize), (7, 11), (11, 15)] {
        s.push_str(&lookup_inv(src));
        s.push_str(&format!("        ld (Astate+{dst}), a\n"));
    }
    s.push_str("        ld a, b\n        ld (Astate+15), a\n");
    s.push_str("        ret\n");
    s
}

/// AddRoundKey walking *backwards*: state ^= rkeys[IX..IX+16], then IX
/// retreats by 16 — the inverse cipher consumes round keys last-first.
fn arkd() -> String {
    let mut s = String::from("arkd:   ld hl, Astate\n");
    for i in 0..16 {
        s.push_str(&format!(
            "        ld a, (hl)\n        xor (ix+{i})\n        ld (hl), a\n"
        ));
        if i != 15 {
            s.push_str("        inc hl\n");
        }
    }
    s.push_str("        ld de, 0xFFF0\n        add ix, de\n        ret\n");
    s
}

/// InvMixColumns, unrolled. Per column: dump v, 2v, 4v, 8v of each byte
/// into the `AXm` scratch (xtime chains through the `Axt` page), then
/// each output byte is an 11-term xor —
/// `14·a_r ^ 11·a_{r+1} ^ 13·a_{r+2} ^ 9·a_{r+3}` decomposed over the
/// dumped powers.
fn invmixcols() -> String {
    let mut s = String::from("invmixcols:\n        ld h, hi(Axt)\n");
    for col in 0..4 {
        let base = col * 4;
        // Dump phase: AXm[r*4 + k] = a_r · 2^k for k = 0..3.
        for r in 0..4 {
            s.push_str(&format!("        ld a, (Astate+{})\n", base + r));
            s.push_str(&format!("        ld (AXm+{}), a\n", r * 4));
            for k in 1..4 {
                s.push_str("        ld l, a\n        ld a, (hl)\n");
                s.push_str(&format!("        ld (AXm+{}), a\n", r * 4 + k));
            }
        }
        // Combine phase (inputs all live in AXm, so stores are safe):
        // 14·v = 8v^4v^2v, 11·v = 8v^2v^v, 13·v = 8v^4v^v, 9·v = 8v^v.
        for r in 0..4 {
            let terms: [(usize, usize); 11] = [
                (r, 3),
                (r, 2),
                (r, 1),
                ((r + 1) % 4, 3),
                ((r + 1) % 4, 1),
                ((r + 1) % 4, 0),
                ((r + 2) % 4, 3),
                ((r + 2) % 4, 2),
                ((r + 2) % 4, 0),
                ((r + 3) % 4, 3),
                ((r + 3) % 4, 0),
            ];
            for (i, (row, k)) in terms.iter().enumerate() {
                s.push_str(&format!("        ld a, (AXm+{})\n", row * 4 + k));
                if i != 0 {
                    s.push_str("        xor b\n");
                }
                if i != terms.len() - 1 {
                    s.push_str("        ld b, a\n");
                }
            }
            s.push_str(&format!("        ld (Astate+{}), a\n", base + r));
        }
    }
    s.push_str("        ret\n");
    s
}

/// Code origin of the linkable module (the compiled C below it must end
/// before this address — firmware builds assert it).
pub const LINKED_CODE_ORG: u16 = 0x7300;
/// First table page of the linkable module (three pages, ending exactly
/// at the root-data boundary).
pub const LINKED_TABLES_ORG: u16 = 0x7D00;
/// Private data origin of the linkable module (root data; compiled C
/// data must end at or below this).
pub const LINKED_DATA_ORG: u16 = 0xCE00;

/// Generates the *linkable* AES-128 module: no `main`, no `halt` — three
/// callable entry points that a `dcc`-compiled firmware declares
/// `extern` and drives through two C globals:
///
/// * `_aes_expand` — copies `char aes_key[16]` into the module and runs
///   the key schedule (once per key; the schedule is shared by both
///   directions);
/// * `_aes_enc` — encrypts `char aes_blk[16]` in place;
/// * `_aes_dec` — decrypts `char aes_blk[16]` in place (the standard
///   inverse cipher, consuming the forward round keys last-first).
///
/// Layout: code at [`LINKED_CODE_ORG`], page-aligned S-box / xtime /
/// inverse-S-box tables from [`LINKED_TABLES_ORG`], private workspace at
/// [`LINKED_DATA_ORG`]. Link with
/// [`dcc::build_firmware_linked`](../dcc/fn.build_firmware_linked.html).
///
/// Interrupt safety: the routines use A, BC, DE, HL, IX and IY. Compiled
/// C never touches IX/IY and ISR prologues save the rest, so a C
/// interrupt handler may preempt the module — but must not *call back*
/// into it.
pub fn aes128_linked_module() -> String {
    let sbox = db_table("Asbox", (0..=255u8).map(gf::sbox));
    let xt = db_table("Axt", (0..=255u8).map(gf::xtime));
    let isbox_tab = gf::inv_sbox_table();
    let isbox = db_table("Aisbox", (0..=255u8).map(|i| isbox_tab[i as usize]));
    let subshift = subshift(true);
    let ark = ark();
    let mixcols = mixcols();
    let invsubshift = invsubshift();
    let arkd = arkd();
    let invmixcols = invmixcols();

    // Key schedule g-word lookups (always aligned in the module).
    let ks_lookup =
        |off: i32| -> String { format!("        ld e, (iy{off:+})\n        ld a, (de)\n") };
    let ks0 = ks_lookup(-3);
    let ks1 = ks_lookup(-2);
    let ks2 = ks_lookup(-1);
    let ks3 = ks_lookup(-4);
    let mut ks_tail = String::new();
    for j in 4..16 {
        ks_tail.push_str(&format!(
            "        ld a, (iy+{prev})\n        xor (ix+{j})\n        ld (iy+{j}), a\n",
            prev = j - 4,
        ));
    }

    format!(
        "; AES-128 linkable module (hand assembly, fwd + inverse cipher)\n\
        \x20       org {code_org:#06x}\n\
         _aes_expand:\n\
        \x20       ld hl, _aes_key\n\
        \x20       ld de, Akey\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       jp expand\n\
         _aes_enc:\n\
        \x20       ld hl, _aes_blk\n\
        \x20       ld de, Astate\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       call encrypt\n\
        \x20       ld hl, Astate\n\
        \x20       ld de, _aes_blk\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       ret\n\
         _aes_dec:\n\
        \x20       ld hl, _aes_blk\n\
        \x20       ld de, Astate\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       call decrypt\n\
        \x20       ld hl, Astate\n\
        \x20       ld de, _aes_blk\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       ret\n\
         \n\
         ; ---- encrypt Astate under Arkeys -------------------------------\n\
         encrypt:\n\
        \x20       ld ix, Arkeys\n\
        \x20       call ark\n\
        \x20       ld a, 9\n\
        \x20       ld (Arnd), a\n\
         eround: call subshift\n\
        \x20       call mixcols\n\
        \x20       call ark\n\
        \x20       ld a, (Arnd)\n\
        \x20       dec a\n\
        \x20       ld (Arnd), a\n\
        \x20       jp nz, eround\n\
        \x20       call subshift\n\
        \x20       call ark\n\
        \x20       ret\n\
         \n\
         ; ---- decrypt Astate under Arkeys (keys last-first) -------------\n\
         decrypt:\n\
        \x20       ld ix, Arkeys+160\n\
        \x20       call arkd\n\
        \x20       ld a, 9\n\
        \x20       ld (Arnd), a\n\
         dround: call invsubshift\n\
        \x20       call arkd\n\
        \x20       call invmixcols\n\
        \x20       ld a, (Arnd)\n\
        \x20       dec a\n\
        \x20       ld (Arnd), a\n\
        \x20       jp nz, dround\n\
        \x20       call invsubshift\n\
        \x20       call arkd\n\
        \x20       ret\n\
         \n\
         {ark}\
         \n\
         {arkd}\
         \n\
         {subshift}\
         \n\
         {invsubshift}\
         \n\
         {mixcols}\
         \n\
         {invmixcols}\
         \n\
         ; ---- key schedule ----------------------------------------------\n\
         expand: ld hl, Akey\n\
        \x20       ld de, Arkeys\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       ld a, 1\n\
        \x20       ld (Arcon), a\n\
        \x20       ld ix, Arkeys\n\
        \x20       ld iy, Arkeys+16\n\
        \x20       ld a, 10\n\
        \x20       ld (Arnd), a\n\
         exl:\n\
        \x20       ld d, hi(Asbox)\n\
         {ks0}\
        \x20       push af\n\
        \x20       ld hl, Arcon\n\
        \x20       pop af\n\
        \x20       xor (hl)\n\
        \x20       xor (ix+0)\n\
        \x20       ld (iy+0), a\n\
         {ks1}\
        \x20       xor (ix+1)\n\
        \x20       ld (iy+1), a\n\
         {ks2}\
        \x20       xor (ix+2)\n\
        \x20       ld (iy+2), a\n\
         {ks3}\
        \x20       xor (ix+3)\n\
        \x20       ld (iy+3), a\n\
         {ks_tail}\
        \x20       ld a, (Arcon)\n\
        \x20       ld l, a\n\
        \x20       ld h, hi(Axt)\n\
        \x20       ld a, (hl)\n\
        \x20       ld (Arcon), a\n\
        \x20       ld de, 16\n\
        \x20       add ix, de\n\
        \x20       add iy, de\n\
        \x20       ld a, (Arnd)\n\
        \x20       dec a\n\
        \x20       ld (Arnd), a\n\
        \x20       jp nz, exl\n\
        \x20       ret\n\
         \n\
         ; ---- tables (256-byte aligned) ---------------------------------\n\
        \x20       org {tables_org:#06x}\n\
         {sbox}\
        \x20       org {xt_org:#06x}\n\
         {xt}\
        \x20       org {isbox_org:#06x}\n\
         {isbox}\
         \n\
         ; ---- private workspace (root data) -----------------------------\n\
        \x20       org {data_org:#06x}\n\
         Akey:   ds 16\n\
         Astate: ds 16\n\
         Arcon:  db 0\n\
         Arnd:   db 0\n\
         AXm:    ds 16\n\
         Arkeys: ds 176\n",
        code_org = LINKED_CODE_ORG,
        tables_org = LINKED_TABLES_ORG,
        xt_org = LINKED_TABLES_ORG + 0x100,
        isbox_org = LINKED_TABLES_ORG + 0x200,
        data_org = LINKED_DATA_ORG,
    )
}

fn aes128_asm_source_with(nblocks: usize, aligned: bool) -> String {
    assert!((1..=255).contains(&nblocks), "block count fits a byte");
    let total = nblocks * 16;
    // The xtime table stays page-aligned in both variants (the ablation
    // isolates the S-box); shift it up when the unaligned S-box spills
    // past its page.
    let (sbox_org, xt_org) = if aligned {
        ("0x4800", "0x4900")
    } else {
        ("0x4801", "0x4A00")
    };
    let sbox = db_table("Asbox", (0..=255u8).map(gf::sbox));
    let xt = db_table("Axt", (0..=255u8).map(gf::xtime));
    let subshift = subshift(aligned);
    let ark = ark();
    let mixcols = mixcols();
    // the key schedule's g-word lookups, aligned or not
    let ks_lookup = |off: i32| -> String {
        if aligned {
            format!("        ld e, (iy{off:+})\n        ld a, (de)\n")
        } else {
            format!("        ld a, (iy{off:+})\n        ld l, a\n        ld h, 0\n        ld de, Asbox\n        add hl, de\n        ld a, (hl)\n")
        }
    };
    let ks0 = ks_lookup(-3);
    let ks1 = ks_lookup(-2);
    let ks2 = ks_lookup(-1);
    let ks3 = ks_lookup(-4);
    let ks_page = if aligned {
        "        ld d, hi(Asbox)\n"
    } else {
        ""
    };

    // Key schedule: words 1..3 of each round, unrolled.
    let mut ks_tail = String::new();
    for j in 4..16 {
        ks_tail.push_str(&format!(
            "        ld a, (iy+{prev})\n        xor (ix+{j})\n        ld (iy+{j}), a\n",
            prev = j - 4,
        ));
    }

    format!(
        "; AES-128, hand-optimized for the Rabbit 2000\n\
        \x20       org 0x4000\n\
         start:  ld sp, 0xDFF0\n\
        \x20       call expand\n\
        \x20       ld hl, Ainput\n\
        \x20       ld (Asrc), hl\n\
        \x20       ld hl, Aoutput\n\
        \x20       ld (Adst), hl\n\
        \x20       ld a, {nblocks}\n\
        \x20       ld (Ablk), a\n\
         blk:    ld hl, (Asrc)\n\
        \x20       ld de, Astate\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       ld (Asrc), hl\n\
        \x20       call encrypt\n\
        \x20       ld hl, Astate\n\
        \x20       ld de, (Adst)\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       ld (Adst), de\n\
        \x20       ld a, (Ablk)\n\
        \x20       dec a\n\
        \x20       ld (Ablk), a\n\
        \x20       jp nz, blk\n\
         done:   halt\n\
         \n\
         ; ---- encrypt Astate under Arkeys -------------------------------\n\
         encrypt:\n\
        \x20       ld ix, Arkeys\n\
        \x20       call ark\n\
        \x20       ld a, 9\n\
        \x20       ld (Arnd), a\n\
         eround: call subshift\n\
        \x20       call mixcols\n\
        \x20       call ark\n\
        \x20       ld a, (Arnd)\n\
        \x20       dec a\n\
        \x20       ld (Arnd), a\n\
        \x20       jp nz, eround\n\
        \x20       call subshift\n\
        \x20       call ark\n\
        \x20       ret\n\
         \n\
         ; AddRoundKey, unrolled; advances IX past the round key\n\
         {ark}\
         \n\
         ; SubBytes fused with ShiftRows, one unrolled pass\n\
         {subshift}\
         \n\
         ; MixColumns, columns in B C D E, xtime by table, IY state walk\n\
         {mixcols}\
         \n\
         ; ---- key schedule ----------------------------------------------\n\
         expand: ld hl, Akey\n\
        \x20       ld de, Arkeys\n\
        \x20       ld bc, 16\n\
        \x20       ldir\n\
        \x20       ld a, 1\n\
        \x20       ld (Arcon), a\n\
        \x20       ld ix, Arkeys\n\
        \x20       ld iy, Arkeys+16\n\
        \x20       ld a, 10\n\
        \x20       ld (Arnd), a\n\
         exl:\n\
         {ks_page}\
         {ks0}\
        \x20       push af\n\
        \x20       ld hl, Arcon\n\
        \x20       pop af\n\
        \x20       xor (hl)\n\
        \x20       xor (ix+0)\n\
        \x20       ld (iy+0), a\n\
         {ks1}\
        \x20       xor (ix+1)\n\
        \x20       ld (iy+1), a\n\
         {ks2}\
        \x20       xor (ix+2)\n\
        \x20       ld (iy+2), a\n\
         {ks3}\
        \x20       xor (ix+3)\n\
        \x20       ld (iy+3), a\n\
         {ks_tail}\
        \x20       ld a, (Arcon)\n\
        \x20       ld l, a\n\
        \x20       ld h, hi(Axt)\n\
        \x20       ld a, (hl)\n\
        \x20       ld (Arcon), a\n\
        \x20       ld de, 16\n\
        \x20       add ix, de\n\
        \x20       add iy, de\n\
        \x20       ld a, (Arnd)\n\
        \x20       dec a\n\
        \x20       ld (Arnd), a\n\
        \x20       jp nz, exl\n\
        \x20       ret\n\
         \n\
         ; ---- tables (256-byte aligned) ---------------------------------\n\
        \x20       org {sbox_org}\n\
         {sbox}\
        \x20       org {xt_org}\n\
         {xt}\
         \n\
         ; ---- data -------------------------------------------------------\n\
        \x20       org 0x8000\n\
         Akey:   ds 16\n\
         Astate: ds 16\n\
         Arcon:  db 0\n\
         Arnd:   db 0\n\
         Ablk:   db 0\n\
         Asrc:   dw 0\n\
         Adst:   dw 0\n\
         Arkeys: ds 176\n\
         Ainput: ds {total}\n\
         Aoutput: ds {total}\n"
    )
}
