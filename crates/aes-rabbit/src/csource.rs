//! AES-128 written in the Dynamic C subset — "the C implementation of the
//! AES algorithm (Rijndael) included with the issl library" that the
//! paper's authors ported directly to the board and then measured against
//! hand-optimized assembly (§6).
//!
//! Straightforward byte-oriented Rijndael: table-driven S-box, `xtime`
//! as a function, explicit ShiftRows, classic MixColumns identities.
//! Exactly the kind of portable reference C a library ships.

use crypto::gf;

/// Emits a `char name[256] = {...};` table.
fn table(name: &str, storage: &str, values: impl Iterator<Item = u8>) -> String {
    let vals: Vec<String> = values.map(|v| format!("{v}")).collect();
    let mut out = format!("{storage} char {name}[256] = {{\n");
    for chunk in vals.chunks(16) {
        out.push_str("    ");
        out.push_str(&chunk.join(", "));
        out.push_str(",\n");
    }
    out.push_str("};\n");
    out
}

/// Generates the complete program encrypting `nblocks` 16-byte blocks
/// from `input` into `output` with the key in `key`.
pub fn aes128_c_source(nblocks: usize) -> String {
    assert!(nblocks >= 1, "need at least one block");
    let total = nblocks * 16;
    // Dynamic C puts a large initialized constant like the S-box in
    // extended memory unless told otherwise — the very table the paper's
    // "moving data to root memory" optimization targets.
    let sbox = table("sbox", "xmem", (0..=255u8).map(gf::sbox));

    format!(
        "/* AES-128 (Rijndael) -- direct C port, issl style */\n\
         {sbox}\n\
         char key[16];\n\
         char state[16];\n\
         char rkeys[176];\n\
         char input[{total}];\n\
         char output[{total}];\n\
         \n\
         char xt(char x) {{\n\
             int v;\n\
             v = x << 1;\n\
             if (x & 0x80) v = v ^ 0x1B;\n\
             return v;\n\
         }}\n\
         \n\
         void expand_key() {{\n\
             int i;\n\
             int t0; int t1; int t2; int t3; int tmp;\n\
             int rcon;\n\
             for (i = 0; i < 16; i++) rkeys[i] = key[i];\n\
             rcon = 1;\n\
             for (i = 16; i < 176; i += 4) {{\n\
                 t0 = rkeys[i - 4];\n\
                 t1 = rkeys[i - 3];\n\
                 t2 = rkeys[i - 2];\n\
                 t3 = rkeys[i - 1];\n\
                 if (i % 16 == 0) {{\n\
                     tmp = t0;\n\
                     t0 = sbox[t1] ^ rcon;\n\
                     t1 = sbox[t2];\n\
                     t2 = sbox[t3];\n\
                     t3 = sbox[tmp];\n\
                     rcon = xt(rcon);\n\
                 }}\n\
                 rkeys[i]     = rkeys[i - 16] ^ t0;\n\
                 rkeys[i + 1] = rkeys[i - 15] ^ t1;\n\
                 rkeys[i + 2] = rkeys[i - 14] ^ t2;\n\
                 rkeys[i + 3] = rkeys[i - 13] ^ t3;\n\
             }}\n\
         }}\n\
         \n\
         void add_round_key(int round) {{\n\
             int i;\n\
             int base;\n\
             base = round * 16;\n\
             for (i = 0; i < 16; i++) state[i] ^= rkeys[base + i];\n\
         }}\n\
         \n\
         void sub_bytes() {{\n\
             int i;\n\
             for (i = 0; i < 16; i++) state[i] = sbox[state[i]];\n\
         }}\n\
         \n\
         void shift_rows() {{\n\
             int t;\n\
             t = state[1]; state[1] = state[5]; state[5] = state[9];\n\
             state[9] = state[13]; state[13] = t;\n\
             t = state[2]; state[2] = state[10]; state[10] = t;\n\
             t = state[6]; state[6] = state[14]; state[14] = t;\n\
             t = state[3]; state[3] = state[15]; state[15] = state[11];\n\
             state[11] = state[7]; state[7] = t;\n\
         }}\n\
         \n\
         void mix_columns() {{\n\
             int c;\n\
             int a0; int a1; int a2; int a3;\n\
             for (c = 0; c < 16; c += 4) {{\n\
                 a0 = state[c]; a1 = state[c + 1];\n\
                 a2 = state[c + 2]; a3 = state[c + 3];\n\
                 state[c]     = xt(a0 ^ a1) ^ a1 ^ a2 ^ a3;\n\
                 state[c + 1] = xt(a1 ^ a2) ^ a2 ^ a3 ^ a0;\n\
                 state[c + 2] = xt(a2 ^ a3) ^ a3 ^ a0 ^ a1;\n\
                 state[c + 3] = xt(a3 ^ a0) ^ a0 ^ a1 ^ a2;\n\
             }}\n\
         }}\n\
         \n\
         void encrypt_block() {{\n\
             int round;\n\
             add_round_key(0);\n\
             for (round = 1; round < 10; round++) {{\n\
                 sub_bytes();\n\
                 shift_rows();\n\
                 mix_columns();\n\
                 add_round_key(round);\n\
             }}\n\
             sub_bytes();\n\
             shift_rows();\n\
             add_round_key(10);\n\
         }}\n\
         \n\
         int main() {{\n\
             int b; int i; int base;\n\
             expand_key();\n\
             for (b = 0; b < {nblocks}; b++) {{\n\
                 base = b * 16;\n\
                 for (i = 0; i < 16; i++) state[i] = input[base + i];\n\
                 encrypt_block();\n\
                 for (i = 0; i < 16; i++) output[base + i] = state[i];\n\
             }}\n\
             return 0;\n\
         }}\n"
    )
}

/// Generates the inverse cipher: decrypt `nblocks` blocks from `input`
/// into `output` under `key` — the other half of what the secure channel
/// needs from the cipher, also ported directly from reference C.
pub fn aes128_c_decrypt_source(nblocks: usize) -> String {
    assert!(nblocks >= 1, "need at least one block");
    let total = nblocks * 16;
    let sbox = table("sbox", "xmem", (0..=255u8).map(gf::sbox));
    let inv_sbox = {
        let fwd: Vec<u8> = (0..=255u8).map(gf::sbox).collect();
        let mut inv = [0u8; 256];
        for (i, &v) in fwd.iter().enumerate() {
            inv[usize::from(v)] = i as u8;
        }
        table("isbox", "xmem", inv.into_iter())
    };

    format!(
        "/* AES-128 inverse cipher -- direct C port, issl style */\n\
         {sbox}\n\
         {inv_sbox}\n\
         char key[16];\n\
         char state[16];\n\
         char rkeys[176];\n\
         char input[{total}];\n\
         char output[{total}];\n\
         \n\
         char xt(char x) {{\n\
             int v;\n\
             v = x << 1;\n\
             if (x & 0x80) v = v ^ 0x1B;\n\
             return v;\n\
         }}\n\
         \n\
         /* GF multiplications by the InvMixColumns constants */\n\
         char g9(char x)  {{ char a; char b; char c; a = xt(x); b = xt(a); c = xt(b); return c ^ x; }}\n\
         char g11(char x) {{ char a; char b; char c; a = xt(x); b = xt(a); c = xt(b); return c ^ a ^ x; }}\n\
         char g13(char x) {{ char a; char b; char c; a = xt(x); b = xt(a); c = xt(b); return c ^ b ^ x; }}\n\
         char g14(char x) {{ char a; char b; char c; a = xt(x); b = xt(a); c = xt(b); return c ^ b ^ a; }}\n\
         \n\
         void expand_key() {{\n\
             int i;\n\
             int t0; int t1; int t2; int t3; int tmp;\n\
             int rcon;\n\
             for (i = 0; i < 16; i++) rkeys[i] = key[i];\n\
             rcon = 1;\n\
             for (i = 16; i < 176; i += 4) {{\n\
                 t0 = rkeys[i - 4];\n\
                 t1 = rkeys[i - 3];\n\
                 t2 = rkeys[i - 2];\n\
                 t3 = rkeys[i - 1];\n\
                 if (i % 16 == 0) {{\n\
                     tmp = t0;\n\
                     t0 = sbox[t1] ^ rcon;\n\
                     t1 = sbox[t2];\n\
                     t2 = sbox[t3];\n\
                     t3 = sbox[tmp];\n\
                     rcon = xt(rcon);\n\
                 }}\n\
                 rkeys[i]     = rkeys[i - 16] ^ t0;\n\
                 rkeys[i + 1] = rkeys[i - 15] ^ t1;\n\
                 rkeys[i + 2] = rkeys[i - 14] ^ t2;\n\
                 rkeys[i + 3] = rkeys[i - 13] ^ t3;\n\
             }}\n\
         }}\n\
         \n\
         void add_round_key(int round) {{\n\
             int i;\n\
             int base;\n\
             base = round * 16;\n\
             for (i = 0; i < 16; i++) state[i] ^= rkeys[base + i];\n\
         }}\n\
         \n\
         void inv_sub_bytes() {{\n\
             int i;\n\
             for (i = 0; i < 16; i++) state[i] = isbox[state[i]];\n\
         }}\n\
         \n\
         void inv_shift_rows() {{\n\
             int t;\n\
             t = state[13]; state[13] = state[9]; state[9] = state[5];\n\
             state[5] = state[1]; state[1] = t;\n\
             t = state[2]; state[2] = state[10]; state[10] = t;\n\
             t = state[6]; state[6] = state[14]; state[14] = t;\n\
             t = state[3]; state[3] = state[7]; state[7] = state[11];\n\
             state[11] = state[15]; state[15] = t;\n\
         }}\n\
         \n\
         void inv_mix_columns() {{\n\
             int c;\n\
             int a0; int a1; int a2; int a3;\n\
             for (c = 0; c < 16; c += 4) {{\n\
                 a0 = state[c]; a1 = state[c + 1];\n\
                 a2 = state[c + 2]; a3 = state[c + 3];\n\
                 state[c]     = g14(a0) ^ g11(a1) ^ g13(a2) ^ g9(a3);\n\
                 state[c + 1] = g9(a0) ^ g14(a1) ^ g11(a2) ^ g13(a3);\n\
                 state[c + 2] = g13(a0) ^ g9(a1) ^ g14(a2) ^ g11(a3);\n\
                 state[c + 3] = g11(a0) ^ g13(a1) ^ g9(a2) ^ g14(a3);\n\
             }}\n\
         }}\n\
         \n\
         void decrypt_block() {{\n\
             int round;\n\
             add_round_key(10);\n\
             for (round = 9; round > 0; round--) {{\n\
                 inv_shift_rows();\n\
                 inv_sub_bytes();\n\
                 add_round_key(round);\n\
                 inv_mix_columns();\n\
             }}\n\
             inv_shift_rows();\n\
             inv_sub_bytes();\n\
             add_round_key(0);\n\
         }}\n\
         \n\
         int main() {{\n\
             int b; int i; int base;\n\
             expand_key();\n\
             for (b = 0; b < {nblocks}; b++) {{\n\
                 base = b * 16;\n\
                 for (i = 0; i < 16; i++) state[i] = input[base + i];\n\
                 decrypt_block();\n\
                 for (i = 0; i < 16; i++) output[base + i] = state[i];\n\
             }}\n\
             return 0;\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_parses_and_interprets_to_fips_vector() {
        let src = aes128_c_source(1);
        let prog = dcc::parse(&src).expect("parses");
        let mut interp = dcc::Interp::new(&prog);
        // Poke key/input through the interpreter by running main with
        // globals pre-set is not possible; instead run expand on a zero
        // key and just check it terminates.
        let r = interp.run_main().expect("interprets");
        assert_eq!(r, 0);
    }

    #[test]
    fn decrypt_source_parses_and_terminates() {
        let src = aes128_c_decrypt_source(1);
        let prog = dcc::parse(&src).expect("parses");
        let r = dcc::Interp::new(&prog).run_main().expect("interprets");
        assert_eq!(r, 0);
    }
}
