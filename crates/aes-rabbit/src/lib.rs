//! AES-128 on the Rabbit 2000, twice over — the heart of the paper's
//! evaluation (§6): a direct C port compiled by [`dcc`] under each of the
//! optimization configurations the authors tried, and a hand-optimized
//! assembly implementation, both executed on the [`rabbit`] cycle-level
//! simulator so that speed (cycles/block) and code size can be compared
//! exactly.
//!
//! Both implementations are verified block-for-block against the
//! host-grade [`crypto`] crate (which is itself pinned to FIPS-197).
//!
//! ```
//! use aes_rabbit::{measure, Implementation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let key = [0u8; 16];
//! let blocks = vec![[0x5Au8; 16]];
//! let asm = measure(&Implementation::HandAsm, &key, &blocks)?;
//! let c = measure(&Implementation::CompiledC(dcc::Options::baseline()), &key, &blocks)?;
//! assert_eq!(asm.outputs, c.outputs);
//! assert!(asm.cycles_per_block < c.cycles_per_block);
//! # Ok(())
//! # }
//! ```

pub mod asm_impl;
pub mod csource;

use rabbit::{assemble, Cpu, Engine, Memory, NullIo, ProfileReport, SymbolTable};

pub use asm_impl::{
    aes128_asm_source, aes128_asm_source_unaligned, aes128_linked_module, LINKED_CODE_ORG,
    LINKED_DATA_ORG, LINKED_TABLES_ORG,
};
pub use csource::{aes128_c_decrypt_source, aes128_c_source};

/// Which AES implementation to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Implementation {
    /// The issl-style C port, compiled by `dcc` with the given switches.
    CompiledC(dcc::Options),
    /// The hand-optimized assembly implementation.
    HandAsm,
    /// The hand assembly with an unaligned S-box (ablation: why hand
    /// optimizers page-align lookup tables).
    HandAsmUnaligned,
}

impl Implementation {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Implementation::HandAsm => "hand assembly".to_string(),
            Implementation::HandAsmUnaligned => "hand assembly (unaligned sbox)".to_string(),
            Implementation::CompiledC(o) => {
                let mut parts = Vec::new();
                if o.debug {
                    parts.push("debug");
                } else {
                    parts.push("nodebug");
                }
                if o.root_data {
                    parts.push("root");
                }
                if o.unroll {
                    parts.push("unroll");
                }
                if o.peephole {
                    parts.push("peephole");
                }
                format!("C ({})", parts.join("+"))
            }
        }
    }
}

/// Measurement of one implementation over a workload.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Ciphertext blocks produced on the simulated CPU.
    pub outputs: Vec<[u8; 16]>,
    /// Total cycles from entry to halt (includes one key expansion).
    pub cycles_total: u64,
    /// Cycles per block (total divided by the block count).
    pub cycles_per_block: u64,
    /// Program bytes excluding the workload I/O buffers.
    pub program_bytes: usize,
}

/// Errors from building or running an implementation.
#[derive(Debug)]
pub enum AesRabbitError {
    /// dcc compilation/assembly failed.
    Build(String),
    /// Execution failed (fault or cycle budget).
    Run(String),
    /// The simulated output disagrees with the reference cipher.
    Mismatch {
        /// Index of the first bad block.
        block: usize,
    },
}

impl std::fmt::Display for AesRabbitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AesRabbitError::Build(e) => write!(f, "build failed: {e}"),
            AesRabbitError::Run(e) => write!(f, "run failed: {e}"),
            AesRabbitError::Mismatch { block } => {
                write!(f, "output mismatch at block {block}")
            }
        }
    }
}

impl std::error::Error for AesRabbitError {}

/// Cycle budget per measurement run.
const MAX_CYCLES: u64 = 20_000_000_000;

fn flatten(blocks: &[[u8; 16]]) -> Vec<u8> {
    blocks.iter().flatten().copied().collect()
}

fn unflatten(bytes: &[u8]) -> Vec<[u8; 16]> {
    bytes
        .chunks(16)
        .map(|c| {
            let mut b = [0u8; 16];
            b.copy_from_slice(c);
            b
        })
        .collect()
}

/// Runs `imp` over the workload and measures cycles and size, verifying
/// every output block against the reference cipher.
///
/// # Errors
///
/// [`AesRabbitError`] on build failure, runtime fault/budget, or (a bug
/// in the implementation under test) ciphertext mismatch.
///
/// # Panics
///
/// Panics when `blocks` is empty.
pub fn measure(
    imp: &Implementation,
    key: &[u8; 16],
    blocks: &[[u8; 16]],
) -> Result<Measurement, AesRabbitError> {
    measure_on(Engine::BlockCache, imp, key, blocks)
}

/// As [`measure`], but on an explicitly chosen execution engine. The
/// cycle tables are identical either way; the benchmarks use this to
/// compare host-side throughput.
///
/// # Errors
///
/// As [`measure`].
///
/// # Panics
///
/// Panics when `blocks` is empty.
pub fn measure_on(
    engine: Engine,
    imp: &Implementation,
    key: &[u8; 16],
    blocks: &[[u8; 16]],
) -> Result<Measurement, AesRabbitError> {
    assert!(!blocks.is_empty(), "need at least one block");
    let (m, _) = match imp {
        Implementation::CompiledC(opts) => run_c(engine, *opts, key, blocks, false)?,
        Implementation::HandAsm => run_asm(engine, key, blocks, true, false)?,
        Implementation::HandAsmUnaligned => run_asm(engine, key, blocks, false, false)?,
    };
    verify_outputs(key, blocks, &m.outputs)?;
    Ok(m)
}

/// A [`Measurement`] plus the cycle-attribution profile of the run: which
/// function (assembler label) every cycle went to, with call-stack-aware
/// flamegraph export. This is the per-function view behind the paper's
/// §6 cycles-per-block totals.
#[derive(Debug, Clone)]
pub struct ProfiledMeasurement {
    /// The ordinary measurement (outputs verified, cycles, size).
    pub measurement: Measurement,
    /// Per-symbol cycle attribution, from the build's own label table.
    pub report: ProfileReport,
}

/// As [`measure`], but with the ISS cycle profiler attached: returns the
/// per-symbol cycle breakdown alongside the measurement. Symbols come
/// from the implementation's own label table (the dcc-emitted `_name`
/// function labels for C, the source labels for hand assembly), so the
/// report is a real per-function profile, not a PC histogram.
///
/// # Errors
///
/// As [`measure`].
///
/// # Panics
///
/// Panics when `blocks` is empty.
pub fn measure_profiled(
    imp: &Implementation,
    key: &[u8; 16],
    blocks: &[[u8; 16]],
) -> Result<ProfiledMeasurement, AesRabbitError> {
    assert!(!blocks.is_empty(), "need at least one block");
    let (m, report) = match imp {
        Implementation::CompiledC(opts) => run_c(Engine::BlockCache, *opts, key, blocks, true)?,
        Implementation::HandAsm => run_asm(Engine::BlockCache, key, blocks, true, true)?,
        Implementation::HandAsmUnaligned => {
            run_asm(Engine::BlockCache, key, blocks, false, true)?
        }
    };
    verify_outputs(key, blocks, &m.outputs)?;
    Ok(ProfiledMeasurement {
        measurement: m,
        report: report.expect("profiling was requested"),
    })
}

fn verify_outputs(
    key: &[u8; 16],
    blocks: &[[u8; 16]],
    outputs: &[[u8; 16]],
) -> Result<(), AesRabbitError> {
    let reference = crypto::Rijndael::aes(key).expect("16-byte key");
    for (i, (input, out)) in blocks.iter().zip(outputs).enumerate() {
        let mut expect = *input;
        reference.encrypt_block(&mut expect);
        if expect != *out {
            return Err(AesRabbitError::Mismatch { block: i });
        }
    }
    Ok(())
}

/// Folds the profiler attached to `cpu` (when `profile` was set) through
/// the image's label table.
fn take_report(cpu: &mut Cpu, symbols: &std::collections::HashMap<String, u16>) -> Option<ProfileReport> {
    let profiler = cpu.take_profiler()?;
    let table = SymbolTable::from_pairs(symbols.iter().map(|(name, &addr)| (name.as_str(), addr)));
    Some(profiler.report(&table))
}

fn run_c(
    engine: Engine,
    opts: dcc::Options,
    key: &[u8; 16],
    blocks: &[[u8; 16]],
    profile: bool,
) -> Result<(Measurement, Option<ProfileReport>), AesRabbitError> {
    let src = aes128_c_source(blocks.len());
    let build = dcc::build(&src, opts).map_err(|e| AesRabbitError::Build(e.to_string()))?;
    let (mut cpu, mut mem) = build.machine();
    build.write_bytes(&mut mem, "_key", key);
    build.write_bytes(&mut mem, "_input", &flatten(blocks));
    if profile {
        cpu.enable_profiler();
    }
    build
        .run_prepared_on(engine, &mut cpu, &mut mem, MAX_CYCLES)
        .map_err(|e| AesRabbitError::Run(e.to_string()))?;
    let report = take_report(&mut cpu, &build.image.symbols);
    let out = build.read_bytes(&mem, "_output", blocks.len() * 16);
    Ok((
        Measurement {
            outputs: unflatten(&out),
            cycles_total: cpu.cycles,
            cycles_per_block: cpu.cycles / blocks.len() as u64,
            program_bytes: build.image.size() - 2 * 16 * blocks.len(),
        },
        report,
    ))
}

fn run_asm(
    engine: Engine,
    key: &[u8; 16],
    blocks: &[[u8; 16]],
    aligned: bool,
    profile: bool,
) -> Result<(Measurement, Option<ProfileReport>), AesRabbitError> {
    let src = if aligned {
        aes128_asm_source(blocks.len())
    } else {
        aes128_asm_source_unaligned(blocks.len())
    };
    let image = assemble(&src).map_err(|e| AesRabbitError::Build(e.to_string()))?;
    let mut mem = Memory::new();
    for s in &image.sections {
        mem.load(rmc_phys(s.addr), &s.bytes);
    }
    let key_addr = image.symbol("Akey").expect("Akey symbol");
    let in_addr = image.symbol("Ainput").expect("Ainput symbol");
    let out_addr = image.symbol("Aoutput").expect("Aoutput symbol");
    mem.load(rmc_phys(key_addr), key);
    mem.load(rmc_phys(in_addr), &flatten(blocks));

    let mut cpu = Cpu::new();
    cpu.mmu.segsize = 0xD8;
    cpu.mmu.dataseg = 0x78;
    cpu.mmu.stackseg = 0x78;
    cpu.regs.pc = 0x4000;
    if profile {
        cpu.enable_profiler();
    }
    cpu.run_on(engine, &mut mem, &mut NullIo, MAX_CYCLES)
        .map_err(|e| AesRabbitError::Run(e.to_string()))?;
    if !cpu.halted {
        return Err(AesRabbitError::Run("did not halt".into()));
    }
    let report = take_report(&mut cpu, &image.symbols);
    let out = mem.dump(rmc_phys(out_addr), blocks.len() * 16);
    Ok((
        Measurement {
            outputs: unflatten(&out),
            cycles_total: cpu.cycles,
            cycles_per_block: cpu.cycles / blocks.len() as u64,
            program_bytes: image.size() - 2 * 16 * blocks.len(),
        },
        report,
    ))
}

/// The shared logical→physical load mapping (same as `dcc::harness`).
fn rmc_phys(addr: u16) -> u32 {
    if addr >= 0xE000 {
        u32::from(addr) + 0x76 * 0x1000
    } else if addr >= 0x8000 {
        u32::from(addr) + 0x78000
    } else {
        u32::from(addr)
    }
}

/// Runs the compiled-C inverse cipher over ciphertext blocks on the
/// simulated CPU, returning the recovered plaintext blocks and the
/// cycle cost.
///
/// # Errors
///
/// [`AesRabbitError`] on build or runtime failure.
///
/// # Panics
///
/// Panics when `blocks` is empty.
pub fn measure_decrypt(
    opts: dcc::Options,
    key: &[u8; 16],
    ciphertext: &[[u8; 16]],
) -> Result<Measurement, AesRabbitError> {
    assert!(!ciphertext.is_empty(), "need at least one block");
    let src = aes128_c_decrypt_source(ciphertext.len());
    let build = dcc::build(&src, opts).map_err(|e| AesRabbitError::Build(e.to_string()))?;
    let (mut cpu, mut mem) = build.machine();
    build.write_bytes(&mut mem, "_key", key);
    build.write_bytes(&mut mem, "_input", &flatten(ciphertext));
    build
        .run_prepared(&mut cpu, &mut mem, MAX_CYCLES)
        .map_err(|e| AesRabbitError::Run(e.to_string()))?;
    let out = build.read_bytes(&mem, "_output", ciphertext.len() * 16);
    let m = Measurement {
        outputs: unflatten(&out),
        cycles_total: cpu.cycles,
        cycles_per_block: cpu.cycles / ciphertext.len() as u64,
        program_bytes: build.image.size() - 2 * 16 * ciphertext.len(),
    };
    // Verify: decrypting the ciphertext must invert the reference cipher.
    let reference = crypto::Rijndael::aes(key).expect("16-byte key");
    for (i, (ct, pt)) in ciphertext.iter().zip(&m.outputs).enumerate() {
        let mut expect = *ct;
        reference.decrypt_block(&mut expect);
        if expect != *pt {
            return Err(AesRabbitError::Mismatch { block: i });
        }
    }
    Ok(m)
}

/// The workload of the paper's testbench: `n` pseudorandom blocks and a
/// pseudorandom key, deterministic per seed.
pub fn testbench_workload(n: usize, seed: u64) -> ([u8; 16], Vec<[u8; 16]>) {
    let mut prng = crypto::Prng::new(seed);
    let mut key = [0u8; 16];
    prng.fill(&mut key);
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        let mut b = [0u8; 16];
        prng.fill(&mut b);
        blocks.push(b);
    }
    (key, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_CT: [u8; 16] = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];

    #[test]
    fn hand_asm_matches_fips_vector() {
        // FIPS-197 appendix C.1
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let m = measure(&Implementation::HandAsm, &key, &[block]).expect("runs");
        assert_eq!(m.outputs[0], FIPS_CT);
    }

    #[test]
    fn compiled_c_matches_fips_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let m = measure(
            &Implementation::CompiledC(dcc::Options::baseline()),
            &key,
            &[block],
        )
        .expect("runs");
        assert_eq!(m.outputs[0], FIPS_CT);
    }

    #[test]
    fn both_agree_on_random_blocks() {
        let (key, blocks) = testbench_workload(4, 99);
        let asm = measure(&Implementation::HandAsm, &key, &blocks).expect("asm");
        let c = measure(
            &Implementation::CompiledC(dcc::Options::all_optimizations()),
            &key,
            &blocks,
        )
        .expect("c");
        assert_eq!(asm.outputs, c.outputs);
    }

    #[test]
    fn unaligned_sbox_ablation_is_correct_but_slower() {
        let (key, blocks) = testbench_workload(4, 55);
        let aligned = measure(&Implementation::HandAsm, &key, &blocks).expect("aligned");
        let unaligned =
            measure(&Implementation::HandAsmUnaligned, &key, &blocks).expect("unaligned");
        assert_eq!(aligned.outputs, unaligned.outputs, "same ciphertext");
        let penalty = unaligned.cycles_per_block as f64 / aligned.cycles_per_block as f64;
        assert!(
            penalty > 1.05,
            "losing page alignment must cost real cycles, got {penalty:.3}x"
        );
    }

    /// Driver C firmware for the linkable module: expand once, then run
    /// `nblk` blocks of `buf` through `aes_enc` or `aes_dec` in place.
    const LINKED_DRIVER: &str = "\
        char aes_key[16];\n\
        char aes_blk[16];\n\
        char buf[64];\n\
        char nblk;\n\
        char mode;\n\
        extern void aes_expand();\n\
        extern void aes_enc();\n\
        extern void aes_dec();\n\
        int main() {\n\
            int b; int i;\n\
            aes_expand();\n\
            for (b = 0; b < nblk; b++) {\n\
                for (i = 0; i < 16; i++) aes_blk[i] = buf[b * 16 + i];\n\
                if (mode) aes_dec(); else aes_enc();\n\
                for (i = 0; i < 16; i++) buf[b * 16 + i] = aes_blk[i];\n\
            }\n\
            return 0;\n\
        }\n";

    fn run_linked(key: &[u8; 16], blocks: &[[u8; 16]], mode: u8) -> Vec<[u8; 16]> {
        assert!(blocks.len() <= 4);
        let module = aes128_linked_module();
        let b = dcc::build_firmware_linked(LINKED_DRIVER, dcc::Options::baseline(), &[], &[&module])
            .expect("links");
        // No section may overlap another (C code vs module code/tables,
        // C data vs module workspace).
        let mut spans: Vec<(u16, usize)> = b
            .image
            .sections
            .iter()
            .map(|s| (s.addr, s.bytes.len()))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(
                (w[0].0 as usize) + w[0].1 <= w[1].0 as usize,
                "sections overlap: {:#06x}+{} vs {:#06x}",
                w[0].0,
                w[0].1,
                w[1].0
            );
        }
        let (mut cpu, mut mem) = b.machine();
        b.write_bytes(&mut mem, "_aes_key", key);
        let flat: Vec<u8> = blocks.iter().flatten().copied().collect();
        b.write_bytes(&mut mem, "_buf", &flat);
        b.write_bytes(&mut mem, "_nblk", &[blocks.len() as u8]);
        b.write_bytes(&mut mem, "_mode", &[mode]);
        b.run_prepared(&mut cpu, &mut mem, 100_000_000).expect("runs");
        let out = b.read_bytes(&mem, "_buf", blocks.len() * 16);
        out.chunks(16)
            .map(|c| <[u8; 16]>::try_from(c).unwrap())
            .collect()
    }

    #[test]
    fn linked_module_encrypt_matches_reference() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let out = run_linked(&key, &[block], 0);
        assert_eq!(out[0], FIPS_CT, "FIPS-197 C.1 through the linked module");

        let (key, blocks) = testbench_workload(4, 77);
        let reference = crypto::Rijndael::aes(&key).unwrap();
        let expect: Vec<[u8; 16]> = blocks
            .iter()
            .map(|b| {
                let mut c = *b;
                reference.encrypt_block(&mut c);
                c
            })
            .collect();
        assert_eq!(run_linked(&key, &blocks, 0), expect);
    }

    #[test]
    fn linked_module_decrypt_inverts_reference_encrypt() {
        let (key, blocks) = testbench_workload(4, 78);
        let reference = crypto::Rijndael::aes(&key).unwrap();
        let ct: Vec<[u8; 16]> = blocks
            .iter()
            .map(|b| {
                let mut c = *b;
                reference.encrypt_block(&mut c);
                c
            })
            .collect();
        assert_eq!(run_linked(&key, &ct, 1), blocks, "decrypt round-trips");
    }

    #[test]
    fn compiled_c_decrypt_inverts_encrypt() {
        let (key, blocks) = testbench_workload(2, 31);
        // encrypt with the reference, decrypt on the simulated Rabbit
        let reference = crypto::Rijndael::aes(&key).unwrap();
        let ct: Vec<[u8; 16]> = blocks
            .iter()
            .map(|b| {
                let mut c = *b;
                reference.encrypt_block(&mut c);
                c
            })
            .collect();
        let m = measure_decrypt(dcc::Options::baseline(), &key, &ct).expect("decrypts");
        assert_eq!(m.outputs, blocks, "round trip through the board cipher");
    }

    #[test]
    fn asm_is_an_order_of_magnitude_faster() {
        let (key, blocks) = testbench_workload(4, 7);
        let asm = measure(&Implementation::HandAsm, &key, &blocks).expect("asm");
        let c = measure(
            &Implementation::CompiledC(dcc::Options::baseline()),
            &key,
            &blocks,
        )
        .expect("c");
        let ratio = c.cycles_per_block as f64 / asm.cycles_per_block as f64;
        assert!(ratio > 10.0, "asm/C ratio {ratio:.1} should exceed 10x");
    }
}
