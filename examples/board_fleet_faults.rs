//! E16: fault injection against the serving fleet — four RMC2000
//! boards behind the balancer take a scripted wedge (with
//! resurrection), a link flap, and a MAC-targeting corruption storm
//! while three waves of clients dial in. Survivor sessions complete;
//! the balancer's 5 ms connect timeout absorbs the wedge; the storm
//! draws the guest's deterministic close alert.
//!
//! Runs the scenario under both execution engines, prints the
//! EXPERIMENTS.md §E16 tables (sessions vs faults, failover latency),
//! asserts engine byte-identity, and writes the machine-readable
//! results to `BENCH_e16.json` in the current directory.
//!
//! Run: `cargo run --release --example board_fleet_faults`

use std::time::Instant;

use bench::Json;
use issl::recmap;
use netsim::Corruption;
use rabbit::Engine;
use rmc2000::nic::CYCLES_PER_US;
use rmc2000::{fleet_faults, FaultPlan, FleetRun, FleetSpec, GuestClient, Tamper};

const PSK: &[u8] = b"rmc2000 shared secret";
const BOARDS: usize = 4;

// The scripted timeline, in virtual µs (see tests/e16_fleet_faults.rs
// for the reasoning): the wedge lands after wave 1 drains, wave 2
// dials into the degraded fleet, wave 3 dials after the resurrection.
const WEDGE_AT: u64 = 560_000;
const WAVE2_AT: u64 = 600_000;
const FLAP_END: u64 = 750_000;
const STORM_END: u64 = 1_500_000;
const RESURRECT_AT: u64 = 1_600_000;
const WAVE3_AT: u64 = 1_900_000;

fn secure(tag: u8) -> GuestClient {
    GuestClient::Secure {
        messages: vec![vec![0x60 + tag; 22], vec![0x10 + tag; 31]],
        psk: PSK.to_vec(),
        tamper: Tamper::None,
    }
}

fn plain(tag: u8) -> GuestClient {
    GuestClient::Plain {
        messages: vec![format!("fault wave client {tag}").into_bytes()],
    }
}

fn workload() -> (Vec<GuestClient>, Vec<u64>) {
    let clients = vec![
        secure(0),
        secure(1),
        plain(2),
        plain(3),
        secure(4),
        secure(5),
        secure(6),
        secure(7),
        secure(8),
        secure(9),
        plain(10),
        plain(11),
    ];
    let mut dials = vec![0; 4];
    dials.extend([WAVE2_AT; 4]);
    dials.extend([WAVE3_AT; 4]);
    (clients, dials)
}

fn spec(engine: Engine) -> FleetSpec {
    let (clients, dials) = workload();
    let mut spec = FleetSpec::new(engine, BOARDS, PSK, clients);
    spec.probe_gap_us = Some(900);
    spec.faults = FaultPlan::new()
        .wedge_resurrect(1, WEDGE_AT, RESURRECT_AT)
        .flap(2, WAVE2_AT, FLAP_END, 0.4)
        .storm(
            3,
            WAVE2_AT,
            STORM_END,
            Corruption::mac_storm(recmap::REC_DATA),
        );
    spec.dials = dials;
    spec.lb_retry_after_us = Some(200_000);
    spec.lb_stall_timeout_us = Some(2_000_000);
    spec
}

struct Measured {
    name: &'static str,
    run: FleetRun,
    wall_ms: f64,
}

fn main() {
    let (clients, _) = workload();
    let sessions = clients.len();

    let mut measured: Vec<Measured> = Vec::new();
    for (name, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        let t0 = Instant::now();
        let run = fleet_faults(&spec(engine));
        let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        for (i, out) in run.outcomes.iter().enumerate() {
            assert!(out.established, "client {i} establishes");
            assert_eq!(out.error, None, "client {i} has no transport error");
        }
        measured.push(Measured { name, run, wall_ms });
    }

    let a = &measured[0].run;
    let clean = a
        .outcomes
        .iter()
        .filter(|o| !(o.peer_closed && o.echoed.is_empty()))
        .count();
    let victims = sessions - clean;
    println!(
        "E16: {BOARDS} boards under fault injection — {} fault events, \
         {sessions} sessions dialed in 3 waves",
        a.faults.injected()
    );
    println!(
        "     wedge board1 @{WEDGE_AT}µs (resurrect @{RESURRECT_AT}µs), \
         flap board2, MAC storm board3\n"
    );
    println!(
        "{:<12} {:>14} {:>12} {:>10} {:>10} {:>10}",
        "engine", "fleet cycles", "virtual ms", "clean", "alerted", "wall ms"
    );
    for m in &measured {
        let r = &m.run;
        let cycles: u64 = r.boards.iter().map(|b| b.cycles).sum();
        println!(
            "{:<12} {:>14} {:>12.2} {:>10} {:>10} {:>10.1}",
            m.name,
            cycles,
            r.virtual_us as f64 / 1_000.0,
            clean,
            victims,
            m.wall_ms,
        );
    }

    let b = &measured[1].run;
    let identical = a.outcomes == b.outcomes
        && a.epochs == b.epochs
        && a.virtual_us == b.virtual_us
        && a.backends == b.backends
        && a.snapshot == b.snapshot
        && a.faults == b.faults
        && a.boards.iter().zip(&b.boards).all(|(x, y)| {
            x.cycles == y.cycles
                && x.instructions == y.instructions
                && x.conns == y.conns
                && x.alert_kinds == y.alert_kinds
                && x.serial_tx == y.serial_tx
        });
    assert!(identical, "engines disagree on an observable");
    println!("\nengines byte-identical: transcripts, cycles, books, fault report \u{2713}");

    println!("\nfault ledger:");
    for f in &a.faults.applied {
        println!("  @{:>9}µs  {}", f.applied_us, f.what);
    }
    println!(
        "\ncorrupted frames: {}   failover latencies: {:?} µs   revivals: {}",
        a.faults.corrupted_frames,
        a.faults.failover_latencies_us,
        a.backends.iter().map(|be| be.revivals).sum::<u64>(),
    );

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>12}",
        "board", "sessions", "failures", "revivals", "close alerts"
    );
    for (board, be) in a.boards.iter().zip(&a.backends) {
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12}",
            board.label, be.served, be.failures, be.revivals, board.alert_kinds[0],
        );
    }

    let json = render_json(sessions, clean, identical, &measured);
    std::fs::write("BENCH_e16.json", &json).expect("write BENCH_e16.json");
    println!("\nwrote BENCH_e16.json");
}

/// The E16 document on the shared bench emitter: the scenario header,
/// one object per engine, the fault ledger, and the per-board books.
fn render_json(sessions: usize, clean: usize, identical: bool, measured: &[Measured]) -> String {
    let engines: Vec<Json> = measured
        .iter()
        .map(|m| {
            let r = &m.run;
            let cycles: u64 = r.boards.iter().map(|b| b.cycles).sum();
            Json::obj()
                .field("engine", m.name)
                .field("fleet_cycles", cycles)
                .field("epochs", r.epochs)
                .field("virtual_us", r.virtual_us)
                .field("wall_clock_ms", Json::f64(m.wall_ms, 1))
        })
        .collect();
    let a = &measured[0].run;
    let faults: Vec<Json> = a
        .faults
        .applied
        .iter()
        .map(|f| {
            Json::obj()
                .field("at_us", f.at_us)
                .field("applied_us", f.applied_us)
                .field("what", f.what.as_str())
        })
        .collect();
    let latencies: Vec<Json> = a
        .faults
        .failover_latencies_us
        .iter()
        .map(|&l| Json::from(l))
        .collect();
    let boards: Vec<Json> = a
        .boards
        .iter()
        .zip(&a.backends)
        .map(|(board, be)| {
            Json::obj()
                .field("board", board.label.as_str())
                .field("sessions_served", be.served)
                .field("failures", be.failures)
                .field("revivals", be.revivals)
                .field("close_alerts", board.alert_kinds[0])
        })
        .collect();
    Json::obj()
        .field("experiment", "E16")
        .field("clock_mhz", CYCLES_PER_US)
        .field("boards", a.boards.len())
        .field("sessions", sessions)
        .field("sessions_clean", clean)
        .field("sessions_alerted", sessions - clean)
        .field("faults_injected", a.faults.injected())
        .field("corrupted_frames", a.faults.corrupted_frames)
        .field("failover_latencies_us", latencies)
        .field("engines_identical", identical)
        .field("engines", engines)
        .field("fault_ledger", faults)
        .field("boards_detail", boards)
        .render()
}
