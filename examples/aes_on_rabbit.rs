//! The paper's Section 6 testbench, interactive: pump blocks through the
//! AES implementations on the simulated Rabbit 2000 and print the
//! cycles/size table.
//!
//! ```text
//! cargo run -p bench --example aes_on_rabbit
//! ```

fn main() {
    println!(
        "AES-128 on the simulated Rabbit 2000 ({} blocks)",
        bench::E1_BLOCKS
    );
    println!();
    println!(
        "{:32} {:>14} {:>12} {:>10}",
        "implementation", "cycles/block", "speedup", "bytes"
    );
    let rows = bench::aes_table();
    let baseline = rows[0].cycles_per_block;
    for r in &rows {
        println!(
            "{:32} {:>14} {:>11.2}x {:>10}",
            r.label,
            r.cycles_per_block,
            baseline as f64 / r.cycles_per_block as f64,
            r.program_bytes
        );
    }
    let asm = rows.last().expect("rows");
    println!();
    println!(
        "hand assembly vs direct C port: {:.1}x — \"more than an order of magnitude\" (§6)",
        baseline as f64 / asm.cycles_per_block as f64
    );
    // At 30 MHz (the RMC2000's clock), cycles translate to real time:
    let us = |cyc: u64| cyc as f64 / 30.0; // 30 cycles / µs
    println!(
        "at 30 MHz: {:.0} µs/block in assembly vs {:.0} µs/block in C",
        us(asm.cycles_per_block),
        us(baseline)
    );
}
