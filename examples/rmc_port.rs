//! The RMC2000 port (§5.3, Figure 3): the issl service restructured for
//! Dynamic C — three handler costatements listening on the TLS port plus
//! one costatement driving the TCP stack, pre-shared keys instead of RSA,
//! AES-128/128 only, static allocation, circular log.
//!
//! Five clients connect; watch the three-connection cap in action.
//!
//! ```text
//! cargo run -p bench --example rmc_port
//! ```

use std::sync::atomic::Ordering;

use dynamicc::Scheduler;
use issl::host::{spawn_driver, spawn_secure_client, standard_rig};
use issl::log::Log;
use issl::rmc::{spawn_rmc_server, RmcServerConfig};
use issl::{CipherSuite, ClientConfig, ClientKx};
use netsim::Endpoint;
use sockets::dynic::Stack;

fn main() {
    let (net, board, client_host) = standard_rig(30);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();

    let config = RmcServerConfig::default();
    println!(
        "booting the Figure 3 server: {} handler costatements + tcp_tick, port {}",
        config.handlers, config.port
    );
    let server = spawn_rmc_server(&mut sched, &stack, &config);
    println!("compiled-in key hash: {}", server.key_hash);
    {
        let arena = server.xalloc.lock().expect("arena");
        println!(
            "xalloc at boot: {} allocations, {} of {} bytes used (no free exists)",
            arena.allocation_count(),
            arena.used(),
            arena.used() + arena.remaining()
        );
    }
    spawn_driver(&mut sched, &net, 1_000);

    let results: Vec<_> = (0..5u64)
        .map(|i| {
            spawn_secure_client(
                &mut sched,
                &net,
                client_host,
                Endpoint::new(net.with(|w| w.host_ip(board)), config.port),
                ClientConfig {
                    suite: CipherSuite::AES128,
                    kx: ClientKx::PreShared(config.psk.clone()),
                },
                vec![i as u8; 2000],
                500,
                40 + i,
            )
        })
        .collect();

    while !results
        .iter()
        .all(|r| r.done.load(Ordering::SeqCst) || r.failed.load(Ordering::SeqCst))
    {
        sched.tick();
    }
    for _ in 0..20_000 {
        sched.tick();
        if server.stats.served.load(Ordering::SeqCst) == 5 {
            break;
        }
    }

    for (i, r) in results.iter().enumerate() {
        println!(
            "client {i}: verified {} bytes (failed: {})",
            r.bytes_verified.load(Ordering::SeqCst),
            r.failed.load(Ordering::SeqCst)
        );
    }
    println!(
        "served {} connections; max simultaneous {} (cap = {} handlers; more means recompiling)",
        server.stats.served.load(Ordering::SeqCst),
        server.stats.max_active.load(Ordering::SeqCst),
        config.handlers
    );
    {
        let arena = server.xalloc.lock().expect("arena");
        println!(
            "xalloc after serving: still {} allocations (static allocation held)",
            arena.allocation_count()
        );
    }
    println!("circular log (capacity {} lines):", server.log.capacity());
    for line in server.log.lines() {
        println!("  {line}");
    }
}
