//! Quickstart: the issl secure channel end to end — a server and a client
//! on a simulated LAN, RSA key exchange, AES-CBC + HMAC records.
//!
//! ```text
//! cargo run -p bench --example quickstart
//! ```

use std::sync::atomic::Ordering;

use dynamicc::Scheduler;
use issl::host::{
    publish_key_hash, spawn_driver, spawn_redirector, spawn_secure_client, standard_rig,
    ComputeCost, RedirectorConfig,
};
use issl::{CipherSuite, ClientConfig, ClientKx, FileLog, Filesystem, Log, ServerConfig, ServerKx};
use netsim::Endpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsa::KeyPair;

fn main() {
    // A two-host LAN: the secure server and a client.
    let (net, server, client) = standard_rig(1);
    let fs = Filesystem::new();
    let log = FileLog::new(fs.clone(), "/var/log/issl.log");

    // The server's RSA identity; its hash goes to the conventional file.
    let mut rng = StdRng::seed_from_u64(2);
    let tls = ServerConfig {
        suites: vec![CipherSuite::AES128],
        kx: ServerKx::Rsa(KeyPair::generate(512, &mut rng)),
    };
    let key_hash = publish_key_hash(&fs, &tls.kx);
    println!("server key hash (from /etc/issl/key.hash): {key_hash}");

    // Processes: two secure-echo workers, one client, one clock driver.
    let mut sched = Scheduler::new();
    spawn_redirector(
        &mut sched,
        &net,
        server,
        &RedirectorConfig {
            port: 4433,
            backend: None,
            tls,
            workers: 2,
            seed: 3,
            compute: ComputeCost::free(),
        },
        log.clone(),
    );
    let message = b"attack at dawn -- but encrypted".to_vec();
    println!("client sends {} bytes over issl...", message.len());
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(net.with(|w| w.host_ip(server)), 4433),
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::Rsa,
        },
        message,
        64,
        4,
    );
    spawn_driver(&mut sched, &net, 1_000);

    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
    }
    assert!(!result.failed.load(Ordering::SeqCst), "exchange failed");
    println!(
        "echoed and verified {} bytes in {} virtual µs",
        result.bytes_verified.load(Ordering::SeqCst),
        net.now()
    );
    for _ in 0..5_000 {
        sched.tick();
        if !log.lines().is_empty() {
            break;
        }
    }
    for line in log.lines() {
        println!("server log: {line}");
    }
}
