//! The paper's Figure 2, runnable: the same echo service written against
//! (a) BSD sockets and (b) the Dynamic C TCP API, producing identical
//! observable behaviour over the same simulated wire — and illustrating
//! why the port was tedious.
//!
//! ```text
//! cargo run -p bench --example echo_bsd_vs_dync
//! ```

use netsim::{htonl, htons, Ipv4, LinkParams};
use sockets::bsd::{SockAddrIn, UnixProcess, AF_INET, INADDR_ANY, SOCK_STREAM};
use sockets::dynic::{SockMode, Stack};
use sockets::Net;

const PORT: u16 = 7;
const SERVER_IP: Ipv4 = Ipv4(0x0A00_0001);

fn rig() -> (Net, netsim::HostId, netsim::HostId) {
    let net = Net::new(77);
    let s = net.add_host("server", SERVER_IP);
    let c = net.add_host("client", Ipv4::new(10, 0, 0, 2));
    net.link(s, c, LinkParams::ethernet_10base_t());
    (net, s, c)
}

/// Figure 2(a): the BSD shape.
#[allow(clippy::field_reassign_with_default)] // mirrors the C idiom on purpose
fn echo_server_bsd() {
    println!("--- Figure 2(a): BSD sockets ---");
    let (net, sh, ch) = rig();

    let mut server = UnixProcess::new(&net, sh);
    let sock = server.socket(AF_INET, SOCK_STREAM, 0).expect("socket");
    // Field-by-field on purpose: this mirrors the C idiom of Figure 2(a).
    let mut addr = SockAddrIn::default();
    addr.sin_family = AF_INET as u16;
    addr.sin_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(PORT);
    server.bind(sock, &addr).expect("bind");
    server.listen(sock, 4).expect("listen");
    println!("server: socket/bind/listen done, accept() will block");

    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).expect("socket");
    client
        .connect(cfd, &SockAddrIn::new(SERVER_IP, PORT))
        .expect("connect");
    client.send_all(cfd, b"hello, bsd world\n").expect("send");

    let newsock = server.accept(sock).expect("accept");
    let mut buf = [0u8; 64];
    let len = server.recv(newsock, &mut buf).expect("recv");
    server.send_all(newsock, &buf[..len]).expect("send");
    println!("server: accepted, echoed {len} bytes");

    let n = client.recv(cfd, &mut buf).expect("recv");
    println!(
        "client got back: {:?}",
        String::from_utf8_lossy(&buf[..n]).trim_end()
    );
}

/// Figure 2(b): the Dynamic C shape.
fn echo_server_dynic() {
    println!("--- Figure 2(b): Dynamic C API ---");
    let (net, sh, ch) = rig();

    // sock_init(); tcp_listen(&socket, PORT, ...);
    let stack = Stack::sock_init(&net, sh);
    let sock = stack.tcp_socket();
    stack.tcp_listen(sock, PORT).expect("tcp_listen");
    println!("server: sock_init + tcp_listen (no accept exists!)");

    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).expect("socket");
    client
        .connect(cfd, &SockAddrIn::new(SERVER_IP, PORT))
        .expect("connect");

    stack
        .sock_wait_established(sock, 100_000)
        .expect("established");
    stack.sock_mode(sock, SockMode::Ascii);
    println!("server: sock_wait_established + sock_mode(ASCII)");

    client.send_all(cfd, b"hello, dynamic c\r\n").expect("send");

    // while (tcp_tick(&socket)) { if (sock_gets(...)) sock_puts(...); }
    let mut echoed = false;
    while stack.tcp_tick(Some(sock)) && !echoed {
        stack.sock_wait_input(sock, 100_000).expect("input");
        if let Some(line) = stack.sock_gets(sock).expect("gets") {
            println!("server: sock_gets -> {line:?}; sock_puts echoes it");
            stack.sock_puts(sock, &line).expect("puts");
            echoed = true;
        }
    }

    let mut buf = [0u8; 64];
    let n = client.recv(cfd, &mut buf).expect("recv");
    println!(
        "client got back: {:?}",
        String::from_utf8_lossy(&buf[..n]).trim_end()
    );
}

fn main() {
    echo_server_bsd();
    println!();
    echo_server_dynic();
    println!();
    println!("same service, same bytes — APIs \"substantially different\" (paper §5)");
}
