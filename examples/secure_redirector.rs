//! The paper's host-side service (§2): a secure **redirector** — an
//! SSL/TLS front that terminates issl sessions and forwards plaintext to
//! a backend server, "such a service" as the commercial SSL accelerator
//! cards it stands in for.
//!
//! Topology:  client ──issl──> redirector ──plaintext──> backend echo
//!
//! ```text
//! cargo run -p bench --example secure_redirector
//! ```

use std::sync::atomic::Ordering;

use dynamicc::Scheduler;
use issl::host::{
    spawn_driver, spawn_plain_echo, spawn_redirector, spawn_secure_client, standard_rig,
    ComputeCost, RedirectorConfig,
};
use issl::{CipherSuite, ClientConfig, ClientKx, FileLog, Filesystem, Log, ServerConfig, ServerKx};
use netsim::{Endpoint, Ipv4, LinkParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsa::KeyPair;

fn main() {
    let (net, front, client) = standard_rig(10);
    let backend = net.add_host("backend", Ipv4::new(10, 0, 0, 3));
    net.link(front, backend, LinkParams::lan_100m());

    let fs = Filesystem::new();
    let log = FileLog::new(fs, "/var/log/issl-redirector.log");
    let mut rng = StdRng::seed_from_u64(11);

    let mut sched = Scheduler::new();
    let backend_stats = spawn_plain_echo(&mut sched, &net, backend, 8080, 2);
    let front_stats = spawn_redirector(
        &mut sched,
        &net,
        front,
        &RedirectorConfig {
            port: 443,
            backend: Some(Endpoint::new(Ipv4::new(10, 0, 0, 3), 8080)),
            tls: ServerConfig {
                suites: vec![CipherSuite::AES128],
                kx: ServerKx::Rsa(KeyPair::generate(512, &mut rng)),
            },
            workers: 3,
            seed: 12,
            compute: ComputeCost::era_2002(),
        },
        log.clone(),
    );
    spawn_driver(&mut sched, &net, 500);

    // Three clients, each pushing a few KB through the secure front.
    let mut results = Vec::new();
    for i in 0..3u64 {
        results.push(spawn_secure_client(
            &mut sched,
            &net,
            client,
            Endpoint::new(net.with(|w| w.host_ip(front)), 443),
            ClientConfig {
                suite: CipherSuite::AES128,
                kx: ClientKx::Rsa,
            },
            vec![i as u8; 3000],
            750,
            20 + i,
        ));
    }

    while !results
        .iter()
        .all(|r| r.done.load(Ordering::SeqCst) || r.failed.load(Ordering::SeqCst))
    {
        sched.tick();
    }
    for (i, r) in results.iter().enumerate() {
        println!(
            "client {i}: {} bytes redirected and verified (failed: {})",
            r.bytes_verified.load(Ordering::SeqCst),
            r.failed.load(Ordering::SeqCst)
        );
    }
    // Let workers notice closes and log.
    for _ in 0..20_000 {
        sched.tick();
        if front_stats.served.load(Ordering::SeqCst) >= 3 {
            break;
        }
    }
    println!(
        "redirector: served {} connections, {} bytes forwarded; backend echoed {} bytes",
        front_stats.served.load(Ordering::SeqCst),
        front_stats.bytes_forward.load(Ordering::SeqCst),
        backend_stats.bytes_forward.load(Ordering::SeqCst),
    );
    println!("virtual time elapsed: {} µs", net.now());
    for line in log.lines() {
        println!("log: {line}");
    }
}
