//! E15: fleet-scale serving — four RMC2000 boards in one deterministic
//! `netsim` world behind a simulated TCP load balancer, together
//! serving twenty-four concurrent secure + plaintext sessions from
//! compiled-C guest firmware.
//!
//! Runs the workload under both execution engines, prints the
//! EXPERIMENTS.md §E15 tables (aggregate throughput, per-board load),
//! asserts engine byte-identity, and writes the machine-readable
//! results to `BENCH_e15.json` in the current directory.
//!
//! Run: `cargo run --release --example board_fleet_serve`

use std::time::Instant;

use bench::Json;
use rabbit::Engine;
use rmc2000::nic::CYCLES_PER_US;
use rmc2000::{fleet_serve, FleetRun, FleetSpec, GuestClient};

const PSK: &[u8] = b"rmc2000 shared secret";
const BOARDS: usize = 4;

/// The E15 workload: 8 secure + 16 plaintext sessions over the fleet's
/// 12 simultaneous handles. Plaintext payloads are ASCII so the
/// guest's first-byte sniff never mistakes them for a ClientHello.
fn workload() -> Vec<GuestClient> {
    let mut clients = Vec::new();
    for i in 0..8u8 {
        let messages: Vec<Vec<u8>> = (0..2u8)
            .map(|j| {
                let len = 20 + 9 * usize::from(i) + 4 * usize::from(j);
                (0..len).map(|k| (i ^ j).wrapping_add(k as u8)).collect()
            })
            .collect();
        clients.push(GuestClient::Secure {
            messages,
            psk: PSK.to_vec(),
            tamper: rmc2000::Tamper::None,
        });
    }
    for i in 0..16u8 {
        clients.push(GuestClient::Plain {
            messages: vec![
                format!("fleet session {i}").into_bytes(),
                format!("second helping for session {i}").into_bytes(),
            ],
        });
    }
    clients
}

struct Measured {
    name: &'static str,
    run: FleetRun,
    wall_ms: f64,
}

fn main() {
    let clients = workload();
    let sessions = clients.len();

    let mut measured: Vec<Measured> = Vec::new();
    for (name, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        let mut spec = FleetSpec::new(engine, BOARDS, PSK, clients.clone());
        spec.probe_gap_us = Some(900);
        let t0 = Instant::now();
        let run = fleet_serve(&spec);
        let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        for (i, out) in run.outcomes.iter().enumerate() {
            assert!(out.established, "client {i} establishes");
            assert_eq!(out.error, None, "client {i} clean");
        }
        let accepts: u16 = run.boards.iter().map(|b| b.accepts).sum();
        assert_eq!(accepts as usize, sessions, "every session served");
        for b in &run.boards {
            assert_eq!(b.open, 0, "{} freed all handles", b.label);
        }
        measured.push(Measured { name, run, wall_ms });
    }

    let payload = measured[0].run.echoed_bytes;
    println!(
        "E15: {BOARDS} boards x 3 handles serving {sessions} mixed sessions \
         ({payload} plaintext bytes echoed)\n"
    );
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>13} {:>10}",
        "engine", "fleet cycles", "virtual ms", "cycles/byte", "sessions/sec", "wall ms"
    );
    for m in &measured {
        let r = &m.run;
        let cycles: u64 = r.boards.iter().map(|b| b.cycles).sum();
        println!(
            "{:<12} {:>14} {:>12.2} {:>12.1} {:>13.1} {:>10.1}",
            m.name,
            cycles,
            r.virtual_us as f64 / 1_000.0,
            cycles as f64 / payload as f64,
            sessions as f64 / (r.virtual_us as f64 / 1_000_000.0),
            m.wall_ms,
        );
    }

    let a = &measured[0].run;
    let b = &measured[1].run;
    let identical = a.outcomes == b.outcomes
        && a.epochs == b.epochs
        && a.virtual_us == b.virtual_us
        && a.backends == b.backends
        && a.snapshot == b.snapshot
        && a.boards.len() == b.boards.len()
        && a.boards.iter().zip(&b.boards).all(|(x, y)| {
            x.cycles == y.cycles
                && x.instructions == y.instructions
                && x.conns == y.conns
                && x.serial_tx == y.serial_tx
        });
    assert!(identical, "engines disagree on an observable");
    println!("\nengines byte-identical: transcripts, cycles, console, telemetry \u{2713}");

    println!(
        "\n{:<12} {:>10} {:>14} {:>12} {:>8} {:>13}",
        "board", "sessions", "cycles", "cycles/byte", "peak", "handles freed"
    );
    for (board, be) in a.boards.iter().zip(&a.backends) {
        println!(
            "{:<12} {:>10} {:>14} {:>12.1} {:>8} {:>13}",
            board.label,
            be.served,
            board.cycles,
            board.cycles as f64 / payload as f64,
            be.peak_inflight,
            if board.open == 0 { "yes" } else { "no" },
        );
    }

    let json = render_json(sessions, payload, identical, &measured);
    std::fs::write("BENCH_e15.json", &json).expect("write BENCH_e15.json");
    println!("\nwrote BENCH_e15.json");
}

/// The E15 document on the shared bench emitter: the fleet header, one
/// object per engine, and the per-board load table.
fn render_json(sessions: usize, payload: u64, identical: bool, measured: &[Measured]) -> String {
    let engines: Vec<Json> = measured
        .iter()
        .map(|m| {
            let r = &m.run;
            let cycles: u64 = r.boards.iter().map(|b| b.cycles).sum();
            let instructions: u64 = r.boards.iter().map(|b| b.instructions).sum();
            Json::obj()
                .field("engine", m.name)
                .field("fleet_cycles", cycles)
                .field("fleet_instructions", instructions)
                .field("epochs", r.epochs)
                .field("virtual_us", r.virtual_us)
                .field(
                    "sessions_per_sec",
                    Json::f64(sessions as f64 / (r.virtual_us as f64 / 1_000_000.0), 1),
                )
                .field("cycles_per_byte", Json::f64(cycles as f64 / payload as f64, 1))
                .field("wall_clock_ms", Json::f64(m.wall_ms, 1))
        })
        .collect();
    let a = &measured[0].run;
    let boards: Vec<Json> = a
        .boards
        .iter()
        .zip(&a.backends)
        .map(|(board, be)| {
            Json::obj()
                .field("board", board.label.as_str())
                .field("sessions_served", be.served)
                .field("peak_inflight", be.peak_inflight)
                .field("cycles", board.cycles)
                .field(
                    "cycles_per_byte",
                    Json::f64(board.cycles as f64 / payload as f64, 1),
                )
        })
        .collect();
    Json::obj()
        .field("experiment", "E15")
        .field("clock_mhz", CYCLES_PER_US)
        .field("boards", measured[0].run.boards.len())
        .field("sessions", sessions)
        .field("payload_bytes", payload)
        .field("code_size", measured[0].run.code_size)
        .field("engines_identical", identical)
        .field("engines", engines)
        .field("boards_detail", boards)
        .render()
}
