//! Guest firmware serving TCP echo traffic end to end (E11).
//!
//! Assembles the NIC echo firmware, boots it on the `rmc2000::Board`,
//! and drives a `netsim` client against it under both execution engines;
//! prints the measured table EXPERIMENTS.md §E11 quotes, then the
//! `net.board.*` slice of the telemetry snapshot.
//!
//! Run: `cargo run --release --example board_echo`

use std::time::Instant;

use rabbit::Engine;
use rmc2000::echo::{run_echo, EchoRun};
use rmc2000::nic::CYCLES_PER_US;

fn main() {
    let msgs: Vec<&[u8]> = vec![
        b"hello rmc2000".as_slice(),
        b"0123456789abcdef".as_slice(),
        &[0x5A; 300],
        b"!".as_slice(),
    ];
    let payload: usize = msgs.iter().map(|m| m.len()).sum();

    println!("E11: guest firmware TCP echo ({payload} payload bytes, 4 messages)\n");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "engine", "guest cycles", "virtual ms", "cycles/byte", "rx frames", "wall ms"
    );

    let mut runs: Vec<(&str, EchoRun)> = Vec::new();
    for (name, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        let t0 = Instant::now();
        let run = run_echo(engine, &msgs);
        let wall = t0.elapsed();
        assert_eq!(run.echoed, msgs.concat(), "echo transcript intact");
        println!(
            "{:<12} {:>14} {:>12.2} {:>12.1} {:>10} {:>10.1}",
            name,
            run.cycles,
            run.virtual_us as f64 / 1_000.0,
            run.cycles as f64 / payload as f64,
            run.rx_frames,
            wall.as_secs_f64() * 1_000.0,
        );
        runs.push((name, run));
    }

    let (_, a) = &runs[0];
    let (_, b) = &runs[1];
    assert_eq!(a.echoed, b.echoed, "transcripts agree");
    assert_eq!(a.cycles, b.cycles, "cycle counts agree");
    assert_eq!(a.snapshot, b.snapshot, "telemetry agrees");
    println!("\nengines byte-identical: transcript, cycles, telemetry ✓");
    println!(
        "virtual serving rate: {:.1} KiB/s of echoed payload at {} MHz\n",
        payload as f64 / (a.virtual_us as f64 / 1_000_000.0) / 1024.0,
        CYCLES_PER_US,
    );

    println!("net.board.* counters:");
    for line in a.snapshot.lines().filter(|l| l.contains("net.board.")) {
        println!("  {line}");
    }
}
