//! E13: three concurrent TCP connections served by dcc-compiled C
//! firmware — the full C → compiler → board → network pipeline, with a
//! serial status console running at higher interrupt priority alongside.
//!
//! Runs the workload under both execution engines, prints the
//! EXPERIMENTS.md §E13 table, asserts engine byte-identity, and writes
//! the machine-readable results to `BENCH_e13.json` in the current
//! directory.
//!
//! Run: `cargo run --release --example board_serve`

use std::time::Instant;

use rabbit::Engine;
use rmc2000::nic::CYCLES_PER_US;
use rmc2000::serve::{serve_clients, ServeRun};

/// The E13 workload: three clients, four messages each, staggered sizes.
fn workload() -> Vec<Vec<Vec<u8>>> {
    (0..3)
        .map(|i| {
            (0..4)
                .map(|j| {
                    let len = 40 + 30 * i + 7 * j;
                    (0..len).map(|k| (i * 64 + j * 16 + k) as u8).collect()
                })
                .collect()
        })
        .collect()
}

struct Measured {
    name: &'static str,
    run: ServeRun,
    wall_ms: f64,
}

fn main() {
    let clients = workload();
    let payload: usize = clients.iter().flatten().map(Vec::len).sum();
    let sessions = clients.len();

    println!("E13: {sessions} concurrent connections, compiled-C firmware ({payload} payload bytes)\n");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>13} {:>10}",
        "engine", "guest cycles", "virtual ms", "cycles/byte", "sessions/sec", "wall ms"
    );

    let mut measured: Vec<Measured> = Vec::new();
    for (name, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        let t0 = Instant::now();
        let run = serve_clients(engine, dcc::Options::all_optimizations(), &clients, Some(500));
        let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        for (i, (sent, got)) in clients.iter().zip(&run.transcripts).enumerate() {
            assert_eq!(&sent.concat(), got, "client {i} transcript");
        }
        assert_eq!(run.peak_open, 3, "all three handles in use at peak");
        println!(
            "{:<12} {:>14} {:>12.2} {:>12.1} {:>13.1} {:>10.1}",
            name,
            run.cycles,
            run.virtual_us as f64 / 1_000.0,
            run.cycles as f64 / payload as f64,
            sessions as f64 / (run.virtual_us as f64 / 1_000_000.0),
            wall_ms,
        );
        measured.push(Measured { name, run, wall_ms });
    }

    let a = &measured[0].run;
    let b = &measured[1].run;
    assert_eq!(a.transcripts, b.transcripts, "transcripts agree");
    assert_eq!(a.cycles, b.cycles, "cycle counts agree");
    assert_eq!(a.serial_tx, b.serial_tx, "console output agrees");
    assert_eq!(a.snapshot, b.snapshot, "telemetry agrees");
    println!("\nengines byte-identical: transcripts, cycles, console, telemetry ✓");
    println!(
        "firmware: {} bytes of root code, {} guest accepts, console wrote {} status lines",
        a.code_size,
        a.guest_accepts,
        a.serial_tx.len() / 3,
    );

    let json = render_json(sessions, payload, &measured);
    std::fs::write("BENCH_e13.json", &json).expect("write BENCH_e13.json");
    println!("\nwrote BENCH_e13.json");
}

/// Hand-rolled JSON (the workspace deliberately carries no serde): one
/// object per engine plus the workload header.
fn render_json(sessions: usize, payload: usize, measured: &[Measured]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"E13\",\n");
    s.push_str(&format!("  \"clock_mhz\": {CYCLES_PER_US},\n"));
    s.push_str(&format!("  \"sessions\": {sessions},\n"));
    s.push_str(&format!("  \"payload_bytes\": {payload},\n"));
    s.push_str("  \"engines\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let r = &m.run;
        s.push_str("    {\n");
        s.push_str(&format!("      \"engine\": \"{}\",\n", m.name));
        s.push_str(&format!("      \"guest_cycles\": {},\n", r.cycles));
        s.push_str(&format!("      \"guest_instructions\": {},\n", r.instructions));
        s.push_str(&format!("      \"virtual_us\": {},\n", r.virtual_us));
        s.push_str(&format!(
            "      \"sessions_per_sec\": {:.1},\n",
            sessions as f64 / (r.virtual_us as f64 / 1_000_000.0)
        ));
        s.push_str(&format!(
            "      \"cycles_per_byte\": {:.1},\n",
            r.cycles as f64 / payload as f64
        ));
        s.push_str(&format!("      \"peak_open\": {},\n", r.peak_open));
        s.push_str(&format!("      \"guest_accepts\": {},\n", r.guest_accepts));
        s.push_str(&format!("      \"code_size\": {},\n", r.code_size));
        s.push_str(&format!("      \"wall_clock_ms\": {:.1}\n", m.wall_ms));
        s.push_str(if i + 1 < measured.len() { "    },\n" } else { "    }\n" });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
