//! Cycle-attribution profiles of the AES implementations: where do the
//! cycles of Section 6's testbench actually go, function by function?
//!
//! ```text
//! cargo run -p bench --example profile_aes
//! ```
//!
//! The profiler rides inside the Rabbit ISS (both engines), attributing
//! every retired cycle to the program counter that spent it and folding
//! PCs into symbols from the assembler's label table. The collapsed
//! stacks at the end are flamegraph.pl-compatible.

use aes_rabbit::{measure_profiled, testbench_workload, Implementation};

fn profile(label: &str, imp: &Implementation) {
    let (key, blocks) = testbench_workload(4, 1903);
    let p = measure_profiled(imp, &key, &blocks).expect("profiled run");
    println!("== {label} ==");
    println!(
        "{} blocks, {} cycles total, {:.1}% attributed to symbols",
        blocks.len(),
        p.measurement.cycles_total,
        p.report.attributed_fraction() * 100.0
    );
    println!();
    print!("{}", p.report.table());
    println!();
    println!("collapsed stacks (flamegraph.pl format):");
    for line in p.report.collapsed().lines().take(8) {
        println!("  {line}");
    }
    println!();
}

fn main() {
    println!("AES-128 per-function cycle attribution (Rabbit 2000 ISS)");
    println!();
    profile(
        "direct C port (dcc, no optimizations)",
        &Implementation::CompiledC(dcc::Options::baseline()),
    );
    profile(
        "optimized C (dcc, all optimizations)",
        &Implementation::CompiledC(dcc::Options::all_optimizations()),
    );
    profile("hand assembly", &Implementation::HandAsm);
    println!(
        "The table is the paper's \"profile first\" step (§5): the rows that\n\
         dominate the C build are exactly the ones the port hand-rewrote."
    );
}
