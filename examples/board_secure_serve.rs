//! E14: the issl record layer served from compiled-C guest firmware —
//! three concurrent PSK + AES-128-CBC + HMAC-SHA1 echo sessions against
//! a server that exists only as Rabbit instructions.
//!
//! Runs the workload under both execution engines with the cycle
//! profiler attached, prints the EXPERIMENTS.md §E14 tables (throughput
//! per engine, cycles/byte per function), asserts engine byte-identity,
//! and writes the machine-readable results to `BENCH_e14.json` in the
//! current directory.
//!
//! Run: `cargo run --release --example board_secure_serve`

use std::time::Instant;

use bench::Json;
use rabbit::Engine;
use rmc2000::nic::CYCLES_PER_US;
use rmc2000::{secure_serve, GuestClient, SecureRun};

const PSK: &[u8] = b"rmc2000 shared secret";

/// The E14 workload: three concurrent secure sessions, two messages
/// each, staggered sizes.
fn workload() -> Vec<GuestClient> {
    (0..3u8)
        .map(|i| {
            let messages: Vec<Vec<u8>> = (0..2u8)
                .map(|j| {
                    let len = 24 + 16 * usize::from(i) + 5 * usize::from(j);
                    (0..len).map(|k| (i ^ j) ^ (k as u8)).collect()
                })
                .collect();
            GuestClient::Secure {
                messages,
                psk: PSK.to_vec(),
                tamper: rmc2000::Tamper::None,
            }
        })
        .collect()
}

struct Measured {
    name: &'static str,
    run: SecureRun,
    wall_ms: f64,
}

fn main() {
    let clients = workload();
    let sessions = clients.len();

    let mut measured: Vec<Measured> = Vec::new();
    for (name, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        let t0 = Instant::now();
        let run = secure_serve(
            engine,
            dcc::Options::all_optimizations(),
            PSK,
            &clients,
            Some(500),
            true,
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        for (i, out) in run.outcomes.iter().enumerate() {
            assert!(out.established, "client {i} establishes");
            assert_eq!(out.error, None, "client {i} clean");
        }
        assert_eq!(run.accepts, 3, "all three handles served");
        assert_eq!(run.open, 0, "orderly teardown");
        measured.push(Measured { name, run, wall_ms });
    }

    let payload = measured[0].run.echoed_bytes;
    println!("E14: {sessions} concurrent secure sessions, compiled-C record layer ({payload} plaintext bytes echoed)\n");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>13} {:>10}",
        "engine", "guest cycles", "virtual ms", "cycles/byte", "sessions/sec", "wall ms"
    );
    for m in &measured {
        let r = &m.run;
        println!(
            "{:<12} {:>14} {:>12.2} {:>12.1} {:>13.1} {:>10.1}",
            m.name,
            r.cycles,
            r.virtual_us as f64 / 1_000.0,
            r.cycles as f64 / payload as f64,
            sessions as f64 / (r.virtual_us as f64 / 1_000_000.0),
            m.wall_ms,
        );
    }

    let a = &measured[0].run;
    let b = &measured[1].run;
    let identical = a.cycles == b.cycles
        && a.instructions == b.instructions
        && a.virtual_us == b.virtual_us
        && a.outcomes == b.outcomes
        && a.conns == b.conns
        && a.serial_tx == b.serial_tx
        && a.snapshot == b.snapshot;
    assert!(identical, "engines disagree on an observable");
    println!("\nengines byte-identical: outcomes, cycles, console, telemetry ✓");

    // Where the cycles went: per-function attribution over the whole
    // serving session, normalised to plaintext bytes echoed.
    let profile = a.profile.as_ref().expect("profiling was requested");
    println!(
        "\nper-function cost ({:.1}% of {} cycles attributed):",
        100.0 * profile.attributed_fraction(),
        profile.total,
    );
    println!("{:<24} {:>14} {:>7} {:>12}", "function", "cycles", "share", "cycles/byte");
    for row in profile.rows.iter().take(16) {
        println!(
            "{:<24} {:>14} {:>6.2}% {:>12.1}",
            row.symbol,
            row.cycles,
            100.0 * row.cycles as f64 / profile.total as f64,
            row.cycles as f64 / payload as f64,
        );
    }

    let json = render_json(sessions, payload, identical, &measured);
    std::fs::write("BENCH_e14.json", &json).expect("write BENCH_e14.json");
    println!("\nwrote BENCH_e14.json");
}

/// The E14 document on the shared bench emitter: the workload header,
/// one object per engine, and the per-function table.
fn render_json(sessions: usize, payload: u64, identical: bool, measured: &[Measured]) -> String {
    let engines: Vec<Json> = measured
        .iter()
        .map(|m| {
            let r = &m.run;
            Json::obj()
                .field("engine", m.name)
                .field("guest_cycles", r.cycles)
                .field("guest_instructions", r.instructions)
                .field("virtual_us", r.virtual_us)
                .field(
                    "sessions_per_sec",
                    Json::f64(sessions as f64 / (r.virtual_us as f64 / 1_000_000.0), 1),
                )
                .field(
                    "cycles_per_byte",
                    Json::f64(r.cycles as f64 / payload as f64, 1),
                )
                .field("code_size", r.code_size)
                .field(
                    "attributed_fraction",
                    Json::f64(r.profile.as_ref().map_or(0.0, |p| p.attributed_fraction()), 4),
                )
                .field("wall_clock_ms", Json::f64(m.wall_ms, 1))
        })
        .collect();
    let profile = measured[0].run.profile.as_ref().expect("profiled");
    let functions: Vec<Json> = profile
        .rows
        .iter()
        .take(16)
        .map(|row| {
            Json::obj()
                .field("symbol", row.symbol.as_str())
                .field("cycles", row.cycles)
                .field(
                    "cycles_per_byte",
                    Json::f64(row.cycles as f64 / payload as f64, 1),
                )
        })
        .collect();
    Json::obj()
        .field("experiment", "E14")
        .field("clock_mhz", CYCLES_PER_US)
        .field("sessions", sessions)
        .field("payload_bytes", payload)
        .field("engines_identical", identical)
        .field("engines", engines)
        .field("functions", functions)
        .render()
}
