//! The event-horizon idle scheduler, measured (E12).
//!
//! Runs the idle-heavy echo-serving session of E11 twice per engine —
//! once burning halted time 2 cycles at a step (the pre-batching
//! reference, `Board::idle_stepwise`) and once through the deadline-driven
//! fast-forward path (`Board::idle`) — and prints the table
//! EXPERIMENTS.md §E12 quotes. Everything observable must stay
//! byte-identical across all four runs; only `board.skip_batches` (a
//! count of scheduler decisions, zero on the stepwise path) and host
//! wall-clock may differ.
//!
//! Run: `cargo run --release --example board_idle`

use std::time::Instant;

use rabbit::Engine;
use rmc2000::echo::{run_echo_paced, EchoRun, IdleMode};

/// Client think time between requests, in virtual µs — what makes the
/// session idle-heavy (the guest serves ~21k cycles per exchange and
/// sleeps ~300k waiting for the next one).
const THINK_US: u64 = 10_000;

/// The snapshot minus the one line that legitimately differs between
/// idle modes: `board.skip_batches` counts fast-forward decisions.
fn observable(snapshot: &str) -> String {
    snapshot
        .lines()
        .filter(|l| !l.contains("board.skip_batches"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let msgs: Vec<&[u8]> = vec![
        b"hello rmc2000".as_slice(),
        b"0123456789abcdef".as_slice(),
        &[0x5A; 300],
        b"!".as_slice(),
    ];

    println!("E12: idle fast-forward — same session, stepwise vs event-horizon\n");
    println!(
        "{:<12} {:<13} {:>14} {:>12} {:>10} {:>16}",
        "engine", "idle path", "guest cycles", "idle cycles", "wall ms", "virtual MHz/host"
    );

    let mut rows: Vec<(String, EchoRun, f64)> = Vec::new();
    for (ename, engine) in [
        ("interpreter", Engine::Interpreter),
        ("block_cache", Engine::BlockCache),
    ] {
        for (mname, mode) in [
            ("stepwise", IdleMode::Stepwise),
            ("fast_forward", IdleMode::FastForward),
        ] {
            let t0 = Instant::now();
            let run = run_echo_paced(engine, &msgs, mode, THINK_US);
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(run.echoed, msgs.concat(), "echo transcript intact");
            let idle_cycles = snapshot_counter(&run.snapshot, "board.idle_cycles");
            println!(
                "{:<12} {:<13} {:>14} {:>12} {:>10.1} {:>16.1}",
                ename,
                mname,
                run.cycles,
                idle_cycles,
                wall * 1_000.0,
                // Virtual-clock rate the host sustains: simulated cycles
                // per host-second, in MHz (the board itself runs at 30).
                run.cycles as f64 / wall / 1.0e6,
            );
            rows.push((format!("{ename}/{mname}"), run, wall));
        }
    }

    // Byte-identity across all four runs: transcript, cycles, virtual
    // time, frame counters, telemetry (minus the scheduler's own
    // decision counter).
    let (ref name0, ref base, _) = rows[0];
    for (name, run, _) in &rows[1..] {
        assert_eq!(&base.echoed, &run.echoed, "{name0} vs {name}: transcript");
        assert_eq!(base.cycles, run.cycles, "{name0} vs {name}: cycles");
        assert_eq!(
            base.virtual_us, run.virtual_us,
            "{name0} vs {name}: virtual clock"
        );
        assert_eq!(
            (base.rx_frames, base.tx_frames),
            (run.rx_frames, run.tx_frames),
            "{name0} vs {name}: frame counters"
        );
        assert_eq!(
            observable(&base.snapshot),
            observable(&run.snapshot),
            "{name0} vs {name}: telemetry"
        );
    }
    println!("\nall four runs byte-identical: transcript, cycles, virtual clock, telemetry ✓");

    for pair in rows.chunks(2) {
        let (ref sname, _, slow) = pair[0];
        let (_, _, fast) = pair[1];
        let engine = sname.split('/').next().unwrap();
        println!(
            "{engine}: {:.1}x less host wall-clock with the event-horizon scheduler",
            slow / fast
        );
        assert!(
            slow / fast >= 5.0,
            "{engine}: idle fast-forward regressed below the 5x floor ({:.1}x)",
            slow / fast
        );
    }

    let (_, fast_run, _) = &rows[3];
    println!("\nboard.* scheduler counters (fast path):");
    for line in fast_run
        .snapshot
        .lines()
        .filter(|l| l.contains("board."))
    {
        println!("  {line}");
    }
}

fn snapshot_counter(snapshot: &str, name: &str) -> u64 {
    snapshot
        .lines()
        .find(|l| l.contains(name))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}
