//! E5 (paper §5.3, Figure 3), cross-crate: the ported server on the
//! Dynamic C stack serves at most three connections simultaneously; a
//! fourth and fifth wait for a handler and are served later. Increasing
//! the cap requires "recompiling" — i.e., spawning a server with more
//! handler costatements.

use bench::e5_run;

#[test]
fn three_handlers_cap_concurrency_at_three() {
    let r = e5_run(5);
    assert_eq!(r.handlers, 3, "the Figure 3 configuration");
    assert_eq!(r.served, 5, "everyone is served eventually");
    assert!(
        r.max_active <= 3,
        "never more than three simultaneous, saw {}",
        r.max_active
    );
    assert!(
        r.max_active >= 2,
        "the offered load did overlap, saw {}",
        r.max_active
    );
}

/// The same three-connection cap, but on the *guest NIC path*: compiled
/// C firmware on the simulated board, where the limit is enforced by the
/// NIC register file's three connection handles rather than by
/// costatement count. Five clients dial in; the fourth and fifth wait in
/// the listen backlog until an earlier client hangs up and frees a
/// handle, and everyone is served eventually.
#[test]
fn guest_nic_path_holds_fourth_connection_at_the_register_file() {
    use rabbit::Engine;
    use rmc2000::serve::serve_clients;

    let clients: Vec<Vec<Vec<u8>>> = (0..5)
        .map(|i| vec![vec![0x40 + i as u8; 120 + 10 * i]])
        .collect();
    let r = serve_clients(
        Engine::BlockCache,
        dcc::Options::all_optimizations(),
        &clients,
        None,
    );
    for (i, (sent, got)) in clients.iter().zip(&r.transcripts).enumerate() {
        assert_eq!(&sent.concat(), got, "client {i} served eventually");
    }
    assert!(
        r.peak_open <= 3,
        "the register file never binds more than three handles, saw {}",
        r.peak_open
    );
    assert!(
        r.peak_open >= 2,
        "the offered load did overlap, saw {}",
        r.peak_open
    );
    assert_eq!(r.guest_accepts, 5, "all five connections accepted in turn");
    assert_eq!(r.guest_open, 0, "teardown freed every handle");
}

#[test]
fn recompiling_with_more_costatements_raises_the_cap() {
    use std::sync::atomic::Ordering;

    use dynamicc::Scheduler;
    use issl::host::{spawn_driver, spawn_secure_client, standard_rig};
    use issl::rmc::{spawn_rmc_server, RmcServerConfig};
    use issl::{CipherSuite, ClientConfig, ClientKx};
    use netsim::Endpoint;
    use sockets::dynic::Stack;

    // "We could easily increase the number of processes (and hence
    // simultaneous connections) by adding more costatements, but the
    // program would have to be re-compiled."
    let (net, board, client_host) = standard_rig(0x55);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let config = RmcServerConfig {
        handlers: 5,
        ..RmcServerConfig::default()
    };
    let server = spawn_rmc_server(&mut sched, &stack, &config);
    let results: Vec<_> = (0..5usize)
        .map(|i| {
            spawn_secure_client(
                &mut sched,
                &net,
                client_host,
                Endpoint::new(net.with(|w| w.host_ip(board)), config.port),
                ClientConfig {
                    suite: CipherSuite::AES128,
                    kx: ClientKx::PreShared(config.psk.clone()),
                },
                vec![i as u8; 4000],
                400,
                900 + i as u64,
            )
        })
        .collect();
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0u64;
    while !results
        .iter()
        .all(|r| r.done.load(Ordering::SeqCst) || r.failed.load(Ordering::SeqCst))
    {
        sched.tick();
        rounds += 1;
        assert!(rounds < 3_000_000, "run stalled");
    }
    for (i, r) in results.iter().enumerate() {
        assert!(!r.failed.load(Ordering::SeqCst), "client {i} failed");
    }
    assert!(
        server.stats.max_active.load(Ordering::SeqCst) >= 4,
        "five handlers allow more than three simultaneous connections, saw {}",
        server.stats.max_active.load(Ordering::SeqCst)
    );
}
