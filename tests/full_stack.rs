//! Full-stack integration spanning every crate: the reproduction's two
//! worlds — the Unix host profile and the RMC2000 port — interoperate
//! over one simulated network, while the instruction-level substrate
//! (Rabbit CPU + dcc + hand assembly) agrees with the host-grade cipher
//! on the very bytes the service carries.

use std::sync::atomic::Ordering;

use aes_rabbit::{measure, Implementation};
use dynamicc::Scheduler;
use issl::host::{spawn_driver, spawn_secure_client, standard_rig};
use issl::rmc::{spawn_rmc_server, RmcServerConfig};
use issl::{CipherSuite, ClientConfig, ClientKx};
use netsim::Endpoint;
use sockets::dynic::Stack;

/// A Unix-profile client talks to the board's ported service; the same
/// plaintext block, encrypted with the session-independent AES-128 on the
/// simulated Rabbit CPU (both the C port and the hand assembly), matches
/// the host cipher used inside the session.
#[test]
fn unix_client_to_board_service_with_cpu_level_aes_agreement() {
    // 1. Service-level exchange: host client <-> board server.
    let (net, board, client_host) = standard_rig(0xF5);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let config = RmcServerConfig::default();
    let server = spawn_rmc_server(&mut sched, &stack, &config);

    let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client_host,
        Endpoint::new(net.with(|w| w.host_ip(board)), config.port),
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::PreShared(config.psk.clone()),
        },
        payload.clone(),
        256,
        0xBEEF,
    );
    spawn_driver(&mut sched, &net, 2_000);
    let mut rounds = 0u64;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 2_000_000, "exchange stalled");
    }
    assert!(!result.failed.load(Ordering::SeqCst));
    assert_eq!(result.bytes_verified.load(Ordering::SeqCst), 1024);
    drop(sched);
    assert_eq!(server.stats.rejected_suites.load(Ordering::SeqCst), 0);

    // 2. Instruction-level agreement: the cipher the session used,
    //    re-run on the simulated Rabbit CPU both ways.
    let key = [0x42u8; 16];
    let mut block = [0u8; 16];
    block.copy_from_slice(&payload[..16]);
    let asm = measure(&Implementation::HandAsm, &key, &[block]).expect("asm");
    let c = measure(
        &Implementation::CompiledC(dcc::Options::all_optimizations()),
        &key,
        &[block],
    )
    .expect("c");
    let reference = crypto::Rijndael::aes(&key).expect("key");
    let mut expect = block;
    reference.encrypt_block(&mut expect);
    assert_eq!(asm.outputs[0], expect, "hand asm agrees with host cipher");
    assert_eq!(c.outputs[0], expect, "compiled C agrees with host cipher");
}

/// The board rejects what the port dropped: a host client offering
/// Rijndael-256/256 is turned away by the embedded profile but served by
/// the host profile.
#[test]
fn suite_support_differs_between_profiles_as_ported() {
    use crypto::Size;
    use issl::host::{spawn_redirector, ComputeCost, RedirectorConfig};
    use issl::{FileLog, Filesystem, ServerConfig, ServerKx};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsa::KeyPair;

    let big = CipherSuite {
        key: Size::Bits256,
        block: Size::Bits256,
    };

    // Host profile serves the big suite...
    let (net, host_server, client_host) = standard_rig(0xF6);
    let mut sched = Scheduler::new();
    let mut rng = StdRng::seed_from_u64(5);
    spawn_redirector(
        &mut sched,
        &net,
        host_server,
        &RedirectorConfig {
            port: 4433,
            backend: None,
            tls: ServerConfig {
                suites: vec![CipherSuite::AES128, big],
                kx: ServerKx::Rsa(KeyPair::generate(512, &mut rng)),
            },
            workers: 1,
            seed: 6,
            compute: ComputeCost::free(),
        },
        FileLog::new(Filesystem::new(), "/var/log/issl.log"),
    );
    let ok = spawn_secure_client(
        &mut sched,
        &net,
        client_host,
        Endpoint::new(net.with(|w| w.host_ip(host_server)), 4433),
        ClientConfig {
            suite: big,
            kx: ClientKx::Rsa,
        },
        b"big blocks welcome here".to_vec(),
        64,
        7,
    );
    spawn_driver(&mut sched, &net, 2_000);
    let mut rounds = 0u64;
    while !ok.done.load(Ordering::SeqCst) && !ok.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 2_000_000);
    }
    assert!(
        !ok.failed.load(Ordering::SeqCst),
        "host profile serves 256/256"
    );
    drop(sched);

    // ...the board does not.
    let (net2, board, client2) = standard_rig(0xF7);
    let stack = Stack::sock_init(&net2, board);
    let mut sched2 = Scheduler::new();
    let config = RmcServerConfig::default();
    let server = spawn_rmc_server(&mut sched2, &stack, &config);
    let rejected = spawn_secure_client(
        &mut sched2,
        &net2,
        client2,
        Endpoint::new(net2.with(|w| w.host_ip(board)), config.port),
        ClientConfig {
            suite: big,
            kx: ClientKx::PreShared(config.psk.clone()),
        },
        b"will be refused".to_vec(),
        64,
        8,
    );
    spawn_driver(&mut sched2, &net2, 2_000);
    let mut rounds = 0u64;
    while !rejected.done.load(Ordering::SeqCst) && !rejected.failed.load(Ordering::SeqCst) {
        sched2.tick();
        rounds += 1;
        assert!(rounds < 2_000_000);
    }
    assert!(
        rejected.failed.load(Ordering::SeqCst),
        "the port only kept AES-128/128"
    );
    for _ in 0..10_000 {
        sched2.tick();
        if server.stats.rejected_suites.load(Ordering::SeqCst) > 0 {
            break;
        }
    }
    assert_eq!(server.stats.rejected_suites.load(Ordering::SeqCst), 1);
}

/// Mass concurrency through the sans-I/O serving path: one readiness-driven
/// event loop multiplexes 1,000 concurrent handshake+echo sessions — the
/// scale the paper's three-costatement port structurally cannot reach —
/// deterministically (same spec, same virtual-time latencies).
#[test]
fn thousand_concurrent_sessions_through_event_loop() {
    use issl::{LoadSpec, ServeReport};

    let spec = LoadSpec::concurrency(1_000);
    let report: ServeReport = issl::serve::run_load(&spec);
    assert_eq!(report.completed, 1_000, "every session completes");
    assert_eq!(report.failed, 0, "no session fails");
    assert!(report.sessions_per_sec() > 0.0);

    let p50 = report.handshake_percentile_us(50.0);
    let p99 = report.handshake_percentile_us(99.0);
    assert!(p50 > 0 && p50 <= p99, "latency percentiles are ordered");

    // Determinism: a rerun of the identical spec reproduces the run
    // down to every per-session handshake latency.
    let again = issl::serve::run_load(&spec);
    assert_eq!(report.handshake_us, again.handshake_us);
    assert_eq!(report.elapsed_us, again.elapsed_us);
}
