//! E13: three concurrent TCP connections served by *compiled C* firmware
//! — the full pipeline of the paper (C source → `dcc` → Rabbit assembly
//! → board → NIC register file → netsim), with a serial status console
//! as a second, higher-priority interrupt source under network load.
//!
//! The paper's port (§5.3) capped the service at three simultaneous
//! connections, one costatement each; the board-level reproduction gives
//! the NIC three connection handles and lets a C round-robin ISR
//! multiplex them. Everything observable must be byte-identical across
//! the interpreter and block-cache execution engines.

use rabbit::Engine;
use rmc2000::serve::{serve_clients, ServeRun};

fn workload() -> Vec<Vec<Vec<u8>>> {
    (0..3)
        .map(|i| {
            (0..4)
                .map(|j| {
                    let len = 40 + 30 * i + 7 * j;
                    (0..len).map(|k| (i * 64 + j * 16 + k) as u8).collect()
                })
                .collect()
        })
        .collect()
}

fn run(engine: Engine) -> ServeRun {
    serve_clients(
        engine,
        dcc::Options::all_optimizations(),
        &workload(),
        Some(500),
    )
}

#[test]
fn three_clients_echo_through_compiled_c_firmware() {
    let r = run(Engine::BlockCache);
    for (i, (sent, got)) in workload().iter().zip(&r.transcripts).enumerate() {
        assert_eq!(&sent.concat(), got, "client {i} transcript");
    }
    assert_eq!(r.peak_open, 3, "all three handles served at once");
    assert_eq!(r.guest_accepts, 3, "guest counted one accept per client");
    assert_eq!(r.guest_open, 0, "teardown closed every handle");
}

#[test]
fn serial_console_reports_status_under_network_load() {
    let r = run(Engine::BlockCache);
    let text = r.serial_tx.clone();
    assert!(!text.is_empty(), "probes produced status lines");
    assert_eq!(text.len() % 3, 0, "whole S<n>\\n lines only");
    let mut max_open = 0u8;
    for line in text.chunks(3) {
        assert_eq!(line[0], b'S', "line shape: {line:?}");
        assert!(line[1].is_ascii_digit(), "line shape: {line:?}");
        assert_eq!(line[2], b'\n', "line shape: {line:?}");
        max_open = max_open.max(line[1] - b'0');
    }
    assert!(
        max_open >= 2,
        "console observed concurrent connections, saw max {max_open}"
    );
}

#[test]
fn per_handle_telemetry_attributes_the_traffic() {
    let r = run(Engine::BlockCache);
    for h in 0..3 {
        assert!(
            r.snapshot
                .contains(&format!("net.board.conn.accepts{{conn=\"{h}\"}}")),
            "per-handle accepts counter for handle {h}:\n{}",
            r.snapshot
        );
    }
    // Every byte the clients sent shows up in some handle's rx counter.
    let sent_total: usize = workload().iter().flatten().map(Vec::len).sum();
    let rx_total: u64 = r
        .snapshot
        .lines()
        .filter(|l| l.starts_with("net.board.conn.rx_bytes"))
        .filter_map(|l| l.split_whitespace().last()?.parse::<u64>().ok())
        .sum();
    assert_eq!(rx_total, sent_total as u64, "snapshot:\n{}", r.snapshot);
}

#[test]
fn engines_agree_byte_for_byte() {
    let a = run(Engine::Interpreter);
    let b = run(Engine::BlockCache);
    assert_eq!(a.cycles, b.cycles, "cycle counts");
    assert_eq!(a.instructions, b.instructions, "instruction counts");
    assert_eq!(a.virtual_us, b.virtual_us, "virtual clocks");
    assert_eq!(a.transcripts, b.transcripts, "client transcripts");
    assert_eq!(a.serial_tx, b.serial_tx, "serial console output");
    assert_eq!(a.peak_open, b.peak_open, "peak concurrency");
    assert_eq!(a.guest_accepts, b.guest_accepts);
    assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots");
}
