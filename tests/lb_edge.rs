//! Load-balancer edge cases at fleet scale, all deterministic and
//! engine-identical: every board pinned at its three-handle capacity
//! (the balancer queues instead of failing), a dead link skipped by
//! least-open routing after the connect timeout, and a client that
//! hangs up mid-handshake without poisoning its board.

use issl::recmap;
use rabbit::Engine;
use rmc2000::{fleet_serve, FleetFirmware, FleetRun, FleetSpec, GuestClient, LbPolicy};

const PSK: &[u8] = b"rmc2000 shared secret";

/// Run the spec under both engines, assert every observable matches,
/// and hand back the interpreter run for the scenario assertions.
fn engine_identical(mk: impl Fn(Engine) -> FleetSpec) -> FleetRun {
    let a = fleet_serve(&mk(Engine::Interpreter));
    let b = fleet_serve(&mk(Engine::BlockCache));
    assert_eq!(a.outcomes, b.outcomes, "client transcripts agree");
    assert_eq!(a.epochs, b.epochs, "epoch counts agree");
    assert_eq!(a.virtual_us, b.virtual_us, "virtual time agrees");
    assert_eq!(a.backends, b.backends, "balancer books agree");
    assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots agree");
    for (x, y) in a.boards.iter().zip(&b.boards) {
        assert_eq!(x.cycles, y.cycles, "{} cycles agree", x.label);
        assert_eq!(x.serial_tx, y.serial_tx, "{} console agrees", x.label);
    }
    a
}

/// With every handle on every board occupied, surplus clients wait in
/// the balancer's FIFO instead of being slammed into a board's backlog
/// until the connect timeout declares the board dead. Ten sessions
/// over six handles: all served, nobody failed, nobody marked dead.
#[test]
fn full_fleet_holds_surplus_sessions_instead_of_failing() {
    let run = engine_identical(|engine| {
        let clients = (0..10u8)
            .map(|i| GuestClient::Plain {
                messages: vec![
                    format!("hold-off client {i}").into_bytes(),
                    format!("and its second message {i}").into_bytes(),
                ],
            })
            .collect();
        let mut spec = FleetSpec::new(engine, 2, b"", clients);
        spec.firmware = FleetFirmware::PlainEcho;
        spec
    });

    for (i, out) in run.outcomes.iter().enumerate() {
        assert!(out.established, "client {i} establishes");
        assert_eq!(out.error, None, "client {i} clean");
    }
    let accepts: u16 = run.boards.iter().map(|b| b.accepts).sum();
    assert_eq!(accepts, 10, "every held session eventually lands");
    for (i, be) in run.backends.iter().enumerate() {
        assert_eq!(be.peak_inflight, 3, "backend {i} pinned at capacity");
        assert_eq!(be.failures, 0, "backend {i} never timed out");
        assert!(!be.dead, "backend {i} never misread as dead");
    }
    let served: u64 = run.backends.iter().map(|b| b.served).sum();
    assert_eq!(served, 10);
}

/// A board behind a dead link (100 % frame loss) never answers the
/// balancer's upstream SYN. Least-open routing tries it once, times
/// out, fails the session over to a healthy board, and marks the
/// backend dead so no later session is routed there.
#[test]
fn dead_link_board_is_skipped_by_least_open_routing() {
    let run = engine_identical(|engine| {
        let clients = (0..6u8)
            .map(|i| GuestClient::Plain {
                messages: vec![format!("around the dead board {i}").into_bytes()],
            })
            .collect();
        let mut spec = FleetSpec::new(engine, 3, b"", clients);
        spec.firmware = FleetFirmware::PlainEcho;
        spec.policy = LbPolicy::LeastOpen;
        spec.dead_links = vec![1];
        spec
    });

    for (i, out) in run.outcomes.iter().enumerate() {
        assert!(out.established, "client {i} failed over");
        assert_eq!(out.error, None, "client {i} clean");
        assert_eq!(
            out.echoed,
            format!("around the dead board {i}").into_bytes()
        );
    }

    let dead = &run.backends[1];
    assert!(dead.dead, "unreachable backend marked dead");
    assert!(dead.failures >= 1, "the timeout was observed");
    assert_eq!(dead.served, 0, "nothing completed on the dead board");
    assert_eq!(run.boards[1].accepts, 0, "no SYN survived the dead link");

    let served: u64 = run.backends.iter().map(|b| b.served).sum();
    assert_eq!(served, 6, "healthy boards absorbed the whole load");
    assert!(run.snapshot.contains("lb.failovers"), "failovers on the books");
}

/// A client opens a secure session, sends a truncated ClientHello —
/// the header promises a body that never arrives — and hangs up.
/// The guest frees the handle, the board survives, and the three
/// well-behaved secure sessions sharing the fleet are untouched.
#[test]
fn client_hanging_up_mid_handshake_frees_the_handle() {
    // `[type, len hi, len lo]` promising a full hello body, then only
    // four bytes of nonce before the FIN.
    let mut partial_hello = vec![
        recmap::REC_CLIENT_HELLO,
        0,
        recmap::CLIENT_HELLO_LEN as u8,
    ];
    partial_hello.extend_from_slice(&[0xAA, 0xBB, 0xCC, 0xDD]);

    let run = engine_identical(move |engine| {
        let mut clients = vec![GuestClient::HangUp {
            payload: partial_hello.clone(),
        }];
        for i in 0..3u8 {
            clients.push(GuestClient::secure(
                &[format!("survivor {i}").as_bytes(), b"still here"],
                PSK,
            ));
        }
        FleetSpec::new(engine, 2, PSK, clients)
    });

    let quitter = &run.outcomes[0];
    assert!(quitter.established, "the TCP connection came up");
    assert!(quitter.echoed.is_empty(), "nothing echoed to the quitter");
    for (i, out) in run.outcomes.iter().enumerate().skip(1) {
        assert!(out.established, "survivor {i} establishes");
        assert_eq!(out.error, None, "survivor {i} clean");
        assert_eq!(
            out.echoed,
            format!("survivor {}still here", i - 1).into_bytes()
        );
    }

    let accepts: u16 = run.boards.iter().map(|b| b.accepts).sum();
    assert_eq!(accepts, 4, "the aborted session still consumed an accept");
    for b in &run.boards {
        assert_eq!(b.open, 0, "{} freed every handle", b.label);
    }
    let handshakes: u32 = run
        .boards
        .iter()
        .flat_map(|b| &b.conns)
        .map(|c| u32::from(c.handshakes))
        .sum();
    assert_eq!(handshakes, 3, "only the survivors completed handshakes");
    for be in &run.backends {
        assert!(!be.dead, "a rude client is not a dead board");
    }
}

/// Regression for the balancer's dead-marking being a life sentence:
/// with `retry_after_us` set, a backend marked dead is re-probed after
/// the window, and a probe that establishes revives it. A scripted
/// link outage blacks board 1 out long enough to get it dead-marked,
/// then lifts; the next wave's probe brings the backend back into
/// rotation.
#[test]
fn dead_backend_is_reprobed_and_revived_after_retry_window() {
    use rmc2000::{fleet_faults, FaultEvent, FaultPlan};

    let run = {
        let mk = |engine: Engine| {
            let clients = (0..4u8)
                .map(|i| GuestClient::Plain {
                    messages: vec![format!("probation client {i}").into_bytes()],
                })
                .collect();
            let mut spec = FleetSpec::new(engine, 2, b"", clients);
            spec.firmware = FleetFirmware::PlainEcho;
            spec.policy = LbPolicy::LeastOpen;
            // Board 1's link is black from boot; wave 1 gets it
            // dead-marked via the connect timeout. The outage lifts at
            // 100 ms; wave 2 dials after the 150 ms retry window.
            spec.faults = FaultPlan::new()
                .at(0, FaultEvent::SetDropRate { board: 1, rate: 1.0 })
                .at(100_000, FaultEvent::RestoreDropRate { board: 1 });
            spec.dials = vec![0, 0, 350_000, 350_000];
            spec.lb_retry_after_us = Some(150_000);
            spec
        };
        let a = fleet_faults(&mk(Engine::Interpreter));
        let b = fleet_faults(&mk(Engine::BlockCache));
        assert_eq!(a.outcomes, b.outcomes, "client transcripts agree");
        assert_eq!(a.backends, b.backends, "balancer books agree");
        assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots agree");
        a
    };

    for (i, out) in run.outcomes.iter().enumerate() {
        assert!(out.established, "client {i} establishes");
        assert_eq!(out.error, None, "client {i} clean");
    }

    // Wave 1: one client timed out against the black link and failed
    // over; board 1 was dead-marked once.
    let b1 = &run.backends[1];
    assert!(b1.failures >= 1, "the outage was observed");
    assert_eq!(run.faults.failover_latencies_us.len(), 1);
    assert!(run.snapshot.contains("lb.dead_marks 1"));

    // Wave 2: the retry window had elapsed, the probe connected, the
    // backend revived and served again.
    assert_eq!(b1.revivals, 1, "board 1 revived exactly once");
    assert!(!b1.dead, "board 1 back in rotation");
    assert!(b1.served >= 1, "board 1 served after revival");
    assert!(run.boards[1].accepts >= 1, "a session landed post-revival");
    assert!(run.snapshot.contains("lb.revivals 1"));
}
