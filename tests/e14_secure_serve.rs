//! E14: the issl record layer served from compiled-C firmware. A host
//! `issl` client machine completes the PSK handshake and echoes
//! plaintext through AES-128-CBC + HMAC-SHA1 records against a server
//! that exists only as guest instructions — C compiled by `dcc`, AES
//! rounds in hand assembly, all driven by the E13 round-robin loop.

use rabbit::Engine;
use rmc2000::{secure_serve, GuestClient, SecureRun};

const PSK: &[u8] = b"rmc2000 shared secret";

/// The mixed E14 workload: one secure session and two plaintext echo
/// sessions sharing the three NIC handles. The plaintext payloads are
/// ASCII, so the guest's first-byte sniff never mistakes them for a
/// ClientHello.
fn mixed_workload() -> Vec<GuestClient> {
    vec![
        GuestClient::secure(&[b"attack at dawn", b"hold position"], PSK),
        GuestClient::Plain {
            messages: vec![b"plain one".to_vec(), b"plain two, longer".to_vec()],
        },
        GuestClient::Plain {
            messages: vec![b"interleaved cleartext traffic".to_vec()],
        },
    ]
}

fn run(engine: Engine, clients: &[GuestClient], probe_gap_us: Option<u64>) -> SecureRun {
    secure_serve(
        engine,
        dcc::Options::all_optimizations(),
        PSK,
        clients,
        probe_gap_us,
        false,
    )
}

/// One well-behaved secure client: full handshake, every message
/// echoed through the encrypted channel, orderly close.
#[test]
fn secure_echo_round_trips_through_compiled_c_firmware() {
    let messages: Vec<Vec<u8>> = vec![
        b"secure echo!".to_vec(),
        (0..64).collect(),
        b"x".to_vec(),
    ];
    let clients = [GuestClient::Secure {
        messages: messages.clone(),
        psk: PSK.to_vec(),
        tamper: rmc2000::Tamper::None,
    }];
    let run = run(Engine::BlockCache, &clients, None);

    let c0 = &run.outcomes[0];
    assert!(c0.established);
    assert_eq!(c0.error, None);
    assert!(!c0.peer_closed, "client closes first, not the guest");
    assert_eq!(c0.echoed, messages.concat(), "plaintext round-trips");
    assert_eq!(run.conns[0].handshakes, 1);
    assert_eq!(run.conns[0].records_in, 3);
    assert_eq!(run.conns[0].records_out, 3);
    assert_eq!(run.conns[0].alerts, 0);
    assert_eq!(run.accepts, 1);
    assert_eq!(run.open, 0);
}

/// Secure and plaintext sessions interleave on the same port while the
/// priority-2 serial ISR keeps answering status probes under load.
#[test]
fn mixed_load_serves_secure_and_plain_with_serial_probes() {
    let clients = mixed_workload();
    let run = run(Engine::BlockCache, &clients, Some(500));

    let c0 = &run.outcomes[0];
    assert!(c0.established);
    assert_eq!(c0.error, None);
    assert_eq!(c0.echoed, b"attack at dawnhold position".to_vec());

    assert_eq!(run.outcomes[1].echoed, b"plain oneplain two, longer".to_vec());
    assert_eq!(
        run.outcomes[2].echoed,
        b"interleaved cleartext traffic".to_vec()
    );

    assert_eq!(run.accepts, 3, "all three handles served");
    assert_eq!(run.open, 0);
    assert_eq!(run.conns[0].handshakes, 1, "exactly one secure session");

    // The console answered every probe with `S<open-handles>\n`, and at
    // some point saw at least two connections open at once.
    assert!(!run.serial_tx.is_empty(), "console answered probes");
    assert_eq!(run.serial_tx.len() % 3, 0);
    let mut max_open = 0u8;
    for line in run.serial_tx.chunks(3) {
        assert_eq!(line[0], b'S');
        assert!(line[1].is_ascii_digit());
        assert_eq!(line[2], b'\n');
        max_open = max_open.max(line[1] - b'0');
    }
    assert!(max_open >= 2, "overlapping sessions visible on the console");

    // The driver publishes the guest's books into the shared registry.
    assert!(run.snapshot.contains("issl.guest.handshakes{conn=\"0\"} 1"));
    assert!(run.snapshot.contains("issl.guest.records.in"));
    assert!(run.snapshot.contains("net.board.conn.accepts"));
}

/// The secure channel's determinism bar: every observable of the mixed
/// workload — cycles, instructions, virtual time, client outcomes,
/// console bytes, telemetry — is byte-identical across engines.
#[test]
fn engines_agree_byte_for_byte() {
    let clients = mixed_workload();
    let a = run(Engine::Interpreter, &clients, Some(500));
    let b = run(Engine::BlockCache, &clients, Some(500));

    assert_eq!(a.cycles, b.cycles, "cycle counts agree");
    assert_eq!(a.instructions, b.instructions, "instruction counts agree");
    assert_eq!(a.virtual_us, b.virtual_us, "virtual time agrees");
    assert_eq!(a.outcomes, b.outcomes, "client outcomes agree");
    assert_eq!(a.conns, b.conns, "guest counters agree");
    assert_eq!(a.accepts, b.accepts);
    assert_eq!(a.open, b.open);
    assert_eq!(a.serial_tx, b.serial_tx, "console output agrees");
    assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots agree");
    assert_eq!(a.echoed_bytes, b.echoed_bytes);
}

/// The cycle profiler attributes where a secure session's time goes:
/// ≥95 % of cycles resolve to named symbols, and the crypto kernels
/// (C SHA-1, hand-assembly AES) appear in the table.
#[test]
fn profiler_attributes_secure_session_cycles_to_symbols() {
    let clients = [GuestClient::secure(&[b"profile me"], PSK)];
    let run = secure_serve(
        Engine::BlockCache,
        dcc::Options::all_optimizations(),
        PSK,
        &clients,
        None,
        true,
    );
    assert!(run.outcomes[0].established);

    let report = run.profile.as_ref().expect("profiling was requested");
    assert!(
        report.attributed_fraction() >= 0.95,
        "only {:.2}% of cycles attributed\n{}",
        100.0 * report.attributed_fraction(),
        report.table()
    );
    for sym in ["_sha1_run", "_hmac_run", "_aes_enc", "_aes_dec", "encrypt", "_pump"] {
        assert!(
            report.rows.iter().any(|r| r.symbol == sym && r.cycles > 0),
            "symbol {sym} missing from profile\n{}",
            report.table()
        );
    }
}
