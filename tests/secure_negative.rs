//! Negative-path tests for the on-guest secure channel: wrong
//! credentials, tampered MACs, truncated records, and handcrafted
//! bad hellos must each end in a deterministic guest alert and an
//! orderly connection close — byte-identical on both engines.

use issl::recmap;
use rabbit::Engine;
use rmc2000::{secure_serve, GuestClient, SecureRun, Tamper};

const PSK: &[u8] = b"rmc2000 shared secret";

/// The wire form of a guest alert record carrying `body`.
fn alert_rec(body: &[u8]) -> Vec<u8> {
    let mut rec = vec![recmap::REC_ALERT];
    rec.extend_from_slice(&(body.len() as u16).to_be_bytes());
    rec.extend_from_slice(body);
    rec
}

/// Runs the workload under both engines, asserts every observable is
/// byte-identical, and returns the interpreter run for inspection.
fn run_both(clients: &[GuestClient]) -> SecureRun {
    let opts = dcc::Options::all_optimizations();
    let a = secure_serve(Engine::Interpreter, opts, PSK, clients, None, false);
    let b = secure_serve(Engine::BlockCache, opts, PSK, clients, None, false);
    assert_eq!(a.outcomes, b.outcomes, "client outcomes agree");
    assert_eq!(a.conns, b.conns, "guest counters agree");
    assert_eq!(a.accepts, b.accepts, "accepts agree");
    assert_eq!(a.open, b.open, "open handles agree");
    assert_eq!(a.cycles, b.cycles, "cycle counts agree");
    assert_eq!(a.instructions, b.instructions, "instruction counts agree");
    assert_eq!(a.virtual_us, b.virtual_us, "virtual time agrees");
    assert_eq!(a.serial_tx, b.serial_tx, "serial output agrees");
    assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots agree");
    a
}

/// Three misbehaving clients on the three NIC handles at once: a wrong
/// pre-shared key, a flipped data-record MAC, and a record truncated
/// after its header. Each draws its own alert; none corrupts the others.
#[test]
fn wrong_psk_tampered_mac_and_truncation_each_draw_an_alert() {
    let run = run_both(&[
        GuestClient::Secure {
            messages: vec![],
            psk: b"not the shared secret".to_vec(),
            tamper: Tamper::None,
        },
        GuestClient::Secure {
            messages: vec![b"flip my mac".to_vec()],
            psk: PSK.to_vec(),
            tamper: Tamper::FlipDataMac,
        },
        GuestClient::Secure {
            messages: vec![],
            psk: PSK.to_vec(),
            tamper: Tamper::TruncateAfterHeader,
        },
    ]);

    // Client 0: the guest rejects the Finished MAC computed from the
    // wrong key, so the handshake never completes and the client machine
    // surfaces the alert as a handshake failure.
    let c0 = &run.outcomes[0];
    assert!(!c0.established, "wrong PSK never establishes");
    assert_eq!(c0.error.as_deref(), Some("PeerAlert"));
    assert!(c0.echoed.is_empty());
    assert!(
        c0.raw_rx.ends_with(&alert_rec(recmap::ALERT_BAD_FINISHED)),
        "stream ends with the bad-finished alert: {:?}",
        c0.raw_rx
    );

    // Client 1: establishes, then its first data record fails the MAC
    // check. In the established state the alert reads as a peer close,
    // not a client error.
    let c1 = &run.outcomes[1];
    assert!(c1.established, "correct PSK establishes");
    assert!(c1.peer_closed, "guest alert closes the channel");
    assert_eq!(c1.error, None);
    assert!(c1.echoed.is_empty(), "tampered record is never echoed");
    assert!(
        c1.raw_rx.ends_with(&alert_rec(recmap::ALERT_CLOSE)),
        "stream ends with the close alert: {:?}",
        c1.raw_rx
    );

    // Client 2: the guest sees EOF with half a record buffered and
    // treats the truncation as fatal.
    let c2 = &run.outcomes[2];
    assert!(c2.established);
    assert!(
        c2.raw_rx.ends_with(&alert_rec(recmap::ALERT_CLOSE)),
        "truncated record draws the close alert: {:?}",
        c2.raw_rx
    );

    // Guest-side books: two completed handshakes (clients 1 and 2), one
    // alert per client, no data record ever accepted or produced.
    let handshakes: u16 = run.conns.iter().map(|c| c.handshakes).sum();
    let alerts: u16 = run.conns.iter().map(|c| c.alerts).sum();
    let records_in: u16 = run.conns.iter().map(|c| c.records_in).sum();
    let records_out: u16 = run.conns.iter().map(|c| c.records_out).sum();
    assert_eq!(handshakes, 2);
    assert_eq!(alerts, 3);
    assert_eq!(records_in, 0);
    assert_eq!(records_out, 0);
    assert_eq!(run.accepts, 3);
    assert_eq!(run.open, 0, "all handles freed after teardown");
}

/// A handcrafted ClientHello advertising a suite geometry the guest
/// does not serve. The server must refuse before revealing anything:
/// the only bytes on the wire are the unsupported-suite alert.
#[test]
fn handcrafted_unsupported_suite_hello_is_refused() {
    let mut hello = vec![
        recmap::REC_CLIENT_HELLO,
        0,
        recmap::CLIENT_HELLO_LEN as u8,
        8, // key length the guest does not serve
        4,
    ];
    hello.extend((0..recmap::NONCE_LEN).map(|i| i as u8));

    let run = run_both(&[GuestClient::Raw { payload: hello }]);

    let c0 = &run.outcomes[0];
    assert!(c0.established, "TCP connection itself comes up");
    assert_eq!(
        c0.raw_rx,
        alert_rec(recmap::ALERT_UNSUPPORTED_SUITE),
        "alert is the only reply — no ServerHello leaks first"
    );
    assert_eq!(run.conns[0].handshakes, 0);
    assert_eq!(run.conns[0].alerts, 1);
    assert_eq!(run.accepts, 1);
    assert_eq!(run.open, 0);
}

/// Link-layer corruption — a byte flip on the wire, not a tampering
/// client — draws exactly the same deterministic close alert as the
/// host-side `FlipDataMac` tamper. A one-board fleet serves a
/// well-behaved secure client through a link whose corruption storm
/// flips the last byte (the MAC tail) of every data record; the
/// guest's record layer must refuse the damaged record and close.
#[test]
fn link_layer_corruption_draws_the_same_alert_as_host_tamper() {
    use netsim::Corruption;
    use rmc2000::{fleet_faults, FaultPlan, FleetSpec};

    let mk = |engine: Engine| {
        let clients = vec![GuestClient::Secure {
            messages: vec![b"over a dirty wire".to_vec()],
            psk: PSK.to_vec(),
            tamper: Tamper::None,
        }];
        let mut spec = FleetSpec::new(engine, 1, PSK, clients);
        spec.probe_gap_us = Some(900);
        // Always-on storm on the board's balancer link: every record
        // whose first byte says "data" loses its MAC tail bit.
        spec.faults = FaultPlan::new().storm(
            0,
            0,
            100_000_000,
            Corruption::mac_storm(recmap::REC_DATA),
        );
        spec
    };
    let a = fleet_faults(&mk(Engine::Interpreter));
    let b = fleet_faults(&mk(Engine::BlockCache));
    assert_eq!(a.outcomes, b.outcomes, "client outcomes agree");
    assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots agree");
    assert_eq!(a.virtual_us, b.virtual_us, "virtual time agrees");
    assert_eq!(
        a.boards[0].cycles, b.boards[0].cycles,
        "cycle counts agree"
    );

    // The handshake survives (its records are not data records); the
    // first data record arrives damaged and the guest closes — the
    // same observable as the host-side MAC flip in
    // `wrong_psk_tampered_mac_and_truncation_each_draw_an_alert`.
    let c0 = &a.outcomes[0];
    assert!(c0.established, "handshake records pass the storm untouched");
    assert!(c0.peer_closed, "guest alert closes the channel");
    assert_eq!(c0.error, None);
    assert!(c0.echoed.is_empty(), "damaged record is never echoed");
    assert!(
        c0.raw_rx.ends_with(&alert_rec(recmap::ALERT_CLOSE)),
        "stream ends with the close alert: {:?}",
        c0.raw_rx
    );

    // The damage is on the books at every layer: the link counted a
    // corrupted frame, the guest counted one close-kind alert.
    assert!(a.faults.corrupted_frames >= 1, "the link flipped a byte");
    assert_eq!(a.boards[0].alert_kinds, [1, 0, 0], "one close alert");
    let alerts: u16 = a.boards[0].conns.iter().map(|c| c.alerts).sum();
    assert_eq!(alerts, 1);
    let records_in: u16 = a.boards[0].conns.iter().map(|c| c.records_in).sum();
    assert_eq!(records_in, 0, "the damaged record was never accepted");
    assert!(
        a.snapshot.contains("net.packets.corrupted"),
        "corruption visible in telemetry"
    );
}
