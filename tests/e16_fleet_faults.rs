//! E16: fault injection against the serving fleet. Four boards behind
//! the balancer take a scripted beating — one board wedges mid-run and
//! is later resurrected, one link flaps, one link suffers a
//! MAC-targeting corruption storm — while three waves of clients dial
//! in. Sessions routed to survivors complete; the balancer's 5 ms
//! connect timeout absorbs the wedge; the corruption storm draws the
//! guest's deterministic close alert; and the whole ordeal is
//! byte-identical across CPU engines and across repeated runs.

use std::sync::OnceLock;

use issl::recmap;
use netsim::Corruption;
use rabbit::Engine;
use rmc2000::{fleet_faults, FaultPlan, FleetRun, FleetSpec, GuestClient, Tamper};

const PSK: &[u8] = b"rmc2000 shared secret";
const BOARDS: usize = 4;

// The scripted timeline, in virtual µs. Wave 1 needs ~540 ms (the
// secure handshake is the long pole at 30 MHz), so the wedge lands on
// an idle board; wave 2 dials into the degraded fleet; wave 3 dials
// after the resurrection, past the balancer's retry window, to prove
// the revived board carries load again.
const WEDGE_AT: u64 = 560_000;
const WAVE2_AT: u64 = 600_000;
const FLAP_END: u64 = 750_000;
const STORM_END: u64 = 1_500_000;
const RESURRECT_AT: u64 = 1_600_000;
const WAVE3_AT: u64 = 1_900_000;

fn secure(tag: u8) -> GuestClient {
    GuestClient::Secure {
        messages: vec![vec![0x60 + tag; 22], vec![0x10 + tag; 31]],
        psk: PSK.to_vec(),
        tamper: Tamper::None,
    }
}

fn plain(tag: u8) -> GuestClient {
    GuestClient::Plain {
        messages: vec![format!("fault wave client {tag}").into_bytes()],
    }
}

/// Three waves of four: a clean warm-up, a wave into the degraded
/// fleet (all secure, so the storm always has a MAC to chew on), and a
/// post-resurrection wave.
fn workload() -> (Vec<GuestClient>, Vec<u64>) {
    let clients = vec![
        secure(0),
        secure(1),
        plain(2),
        plain(3),
        secure(4),
        secure(5),
        secure(6),
        secure(7),
        secure(8),
        secure(9),
        plain(10),
        plain(11),
    ];
    let mut dials = vec![0; 4];
    dials.extend([WAVE2_AT; 4]);
    dials.extend([WAVE3_AT; 4]);
    (clients, dials)
}

fn plan() -> FaultPlan {
    FaultPlan::new()
        .wedge_resurrect(1, WEDGE_AT, RESURRECT_AT)
        .flap(2, WAVE2_AT, FLAP_END, 0.4)
        .storm(
            3,
            WAVE2_AT,
            STORM_END,
            Corruption::mac_storm(recmap::REC_DATA),
        )
}

fn spec(engine: Engine) -> FleetSpec {
    let (clients, dials) = workload();
    let mut spec = FleetSpec::new(engine, BOARDS, PSK, clients);
    spec.probe_gap_us = Some(900);
    spec.faults = plan();
    spec.dials = dials;
    spec.lb_retry_after_us = Some(200_000);
    spec.lb_stall_timeout_us = Some(2_000_000);
    spec
}

fn observables(r: &FleetRun) -> impl std::fmt::Debug + PartialEq {
    (
        r.outcomes.clone(),
        r.snapshot.clone(),
        r.virtual_us,
        r.epochs,
        r.echoed_bytes,
        r.boards
            .iter()
            .map(|b| {
                (
                    b.cycles,
                    b.instructions,
                    b.accepts,
                    b.alert_kinds,
                    b.serial_tx.clone(),
                )
            })
            .collect::<Vec<_>>(),
        r.backends.clone(),
        r.faults.clone(),
    )
}

fn run(engine: Engine) -> &'static FleetRun {
    static INTERP: OnceLock<FleetRun> = OnceLock::new();
    static BC: OnceLock<FleetRun> = OnceLock::new();
    match engine {
        Engine::Interpreter => INTERP.get_or_init(|| fleet_faults(&spec(Engine::Interpreter))),
        Engine::BlockCache => BC.get_or_init(|| fleet_faults(&spec(Engine::BlockCache))),
    }
}

/// The wire form of a guest alert record carrying `body`.
fn alert_rec(body: &[u8]) -> Vec<u8> {
    let mut rec = vec![recmap::REC_ALERT];
    rec.extend_from_slice(&(body.len() as u16).to_be_bytes());
    rec.extend_from_slice(body);
    rec
}

/// The headline E16 claim: with a wedge, a flap and a storm in play,
/// every session still terminates deterministically — survivors'
/// sessions complete cleanly, storm victims draw the guest's close
/// alert, and the balancer's books account for exactly one failover.
#[test]
fn degraded_fleet_still_serves_every_survivor_session() {
    let (clients, _) = workload();
    let run = run(Engine::BlockCache);

    assert_eq!(run.outcomes.len(), 12);
    assert_eq!(run.faults.injected(), 6, "all six plan events applied");

    // Waves 1 and 3 never see a fault: clean echoes all round.
    for i in (0..4).chain(8..12) {
        let out = &run.outcomes[i];
        assert!(out.established, "client {i} establishes");
        assert_eq!(out.error, None, "client {i} clean");
        let expected: Vec<u8> = match &clients[i] {
            GuestClient::Secure { messages, .. } | GuestClient::Plain { messages } => {
                messages.concat()
            }
            _ => unreachable!(),
        };
        assert_eq!(out.echoed, expected, "client {i} echo");
    }

    // Wave 2 dialed into the degraded fleet: everyone establishes
    // (the balancer failed over around the black link), and each
    // session either completes or is cut by the corruption storm with
    // the guest's deterministic close alert — no third outcome.
    let mut victims = 0;
    for i in 4..8 {
        let out = &run.outcomes[i];
        assert!(out.established, "client {i} establishes despite faults");
        assert_eq!(out.error, None, "client {i} has no transport error");
        if out.peer_closed && out.echoed.is_empty() {
            assert!(
                out.raw_rx.ends_with(&alert_rec(recmap::ALERT_CLOSE)),
                "storm victim {i} drew the close alert"
            );
            victims += 1;
        } else {
            let expected: Vec<u8> = match &clients[i] {
                GuestClient::Secure { messages, .. } => messages.concat(),
                _ => unreachable!(),
            };
            assert_eq!(out.echoed, expected, "client {i} rode out the faults");
        }
    }
    assert!(
        (1..=2).contains(&victims),
        "the storm caught wave 2's board-3 traffic: {victims}"
    );

    // The storm's damage is visible end to end: corrupted frames on
    // the link, close alerts in the guest's per-kind books.
    assert!(run.faults.corrupted_frames >= 1, "storm corrupted frames");
    let close_alerts: u16 = run.boards.iter().map(|b| b.alert_kinds[0]).sum();
    assert!(
        close_alerts >= u16::try_from(victims).unwrap(),
        "guest counted a close alert per victim"
    );

    // Two failovers, both at the 5 ms connect timeout: wave 2's
    // connect into the wedged board, and wave 2's connect into the
    // flapping link (a dropped SYN cannot be retried inside the
    // connect window — TCP's initial RTO is 200 ms). Each cost one
    // dead-mark and, once wave 3 probed, one revival.
    assert_eq!(run.faults.failover_latencies_us.len(), 2);
    for &lat in &run.faults.failover_latencies_us {
        assert!(
            (5_000..=5_200).contains(&lat),
            "failover took the connect timeout: {lat} µs"
        );
    }
    for i in [1, 2] {
        assert_eq!(run.backends[i].failures, 1, "board{i} charged one failure");
        assert_eq!(run.backends[i].revivals, 1, "board{i} revived once");
        assert!(!run.backends[i].dead, "board{i} alive again at the end");
    }

    // The resurrected board carries wave-3 load: it served sessions
    // after coming back, and every board freed all its handles.
    assert!(run.backends[1].served >= 1, "board1 served after revival");
    for b in &run.boards {
        assert_eq!(b.open, 0, "{} freed all handles", b.label);
    }
}

/// Engine differential: the interpreter and the block-cache engine
/// agree on every observable of the faulted run.
#[test]
fn faulted_run_is_engine_identical() {
    assert_eq!(
        observables(run(Engine::Interpreter)),
        observables(run(Engine::BlockCache))
    );
}

/// Determinism: the same spec (same fault plan, same per-link fault
/// RNG seeds) replayed from scratch produces the identical run.
#[test]
fn same_fault_plan_twice_is_byte_identical() {
    let again = fleet_faults(&spec(Engine::BlockCache));
    assert_eq!(observables(run(Engine::BlockCache)), observables(&again));
}

/// A wedge freezes the victim's telemetry: the `board<i>.net.board.*`
/// lines captured at wedge time reappear verbatim in the final
/// snapshot when the board is never resurrected, the balancer charges
/// exactly one failure per failed connect, and board 0's legacy
/// unprefixed aliases survive the whole ordeal.
#[test]
fn wedged_board_telemetry_freezes_and_books_balance() {
    // Plain clients on the secure firmware: sessions are quick (~2 ms),
    // so the timeline is tight. Wave 1 exercises both boards; board 1
    // wedges while idle; wave 2 must fail over.
    let clients: Vec<GuestClient> = (0..4).map(plain).collect();
    let mut spec = FleetSpec::new(Engine::BlockCache, 2, PSK, clients);
    spec.probe_gap_us = Some(900);
    spec.dials = vec![0, 0, 40_000, 40_000];
    spec.faults = FaultPlan::new().wedge(1, 20_000);
    spec.lb_retry_after_us = Some(200_000);
    let run = fleet_faults(&spec);

    // All four clients completed, the wave-2 pair on board 0 alone.
    for (i, out) in run.outcomes.iter().enumerate() {
        assert!(out.established && out.error.is_none(), "client {i} clean");
    }
    assert_eq!(run.boards[0].accepts, 3);
    assert_eq!(run.boards[1].accepts, 1);

    // The frozen counters reappear verbatim in the final snapshot.
    assert_eq!(run.faults.wedge_snapshots.len(), 1);
    let (board, frozen) = &run.faults.wedge_snapshots[0];
    assert_eq!(*board, 1);
    assert!(!frozen.is_empty(), "wedge captured board1 counters");
    for line in frozen.lines() {
        assert!(
            run.snapshot.contains(line),
            "board1 counter moved after wedge: {line}"
        );
    }

    // One failed connect, one failure charged, one dead-mark.
    assert_eq!(run.backends[1].failures, 1);
    assert_eq!(run.faults.failover_latencies_us.len(), 1);
    assert!(run.snapshot.contains("lb.dead_marks 1"));

    // Board 0's legacy unprefixed counters still alias the namespaced
    // ones (the pre-fleet dashboard keys keep working).
    assert!(run.snapshot.contains("net.board.rx_frames"));
    assert!(run.snapshot.contains("board0.net.board.rx_frames"));
}
