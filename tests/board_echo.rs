//! End-to-end guest firmware serving: assembled echo firmware on the
//! `rmc2000::Board` answers TCP traffic from a host-side `netsim` client,
//! and the whole session — transcript, guest cycles, virtual time,
//! telemetry — is byte-identical under `Engine::Interpreter` and
//! `Engine::BlockCache`.

use rabbit::Engine;
use rmc2000::echo::{run_echo, EchoRun};

fn messages() -> Vec<&'static [u8]> {
    vec![
        b"hello rmc2000".as_slice(),
        b"0123456789abcdef".as_slice(),
        // A payload long enough to span several TCP segments.
        &[0x5A; 300],
        b"!".as_slice(),
    ]
}

fn expected() -> Vec<u8> {
    messages().concat()
}

#[test]
fn guest_firmware_echoes_tcp_traffic() {
    let run = run_echo(Engine::BlockCache, &messages());
    assert_eq!(run.echoed, expected(), "echo transcript");
    assert!(run.rx_frames > 0, "guest received frames");
    assert!(run.tx_frames > 0, "guest transmitted frames");
    assert!(run.virtual_us > 0, "virtual time advanced");
}

#[test]
fn engines_agree_byte_for_byte() {
    let interp = run_echo(Engine::Interpreter, &messages());
    let block = run_echo(Engine::BlockCache, &messages());

    assert_eq!(interp.echoed, expected(), "interpreter transcript");
    assert_eq!(block.echoed, expected(), "block-cache transcript");
    assert_eq!(interp.cycles, block.cycles, "guest cycle counts");
    assert_eq!(interp.virtual_us, block.virtual_us, "virtual clocks");
    // The full telemetry snapshot (world packet counters, NIC counters)
    // is part of the determinism contract.
    assert_eq!(interp.snapshot, block.snapshot, "telemetry snapshots");
}

#[test]
fn nic_counters_reach_the_world_registry() {
    let EchoRun { snapshot, .. } = run_echo(Engine::BlockCache, &messages());
    for name in [
        "net.board.rx_frames",
        "net.board.rx_bytes",
        "net.board.tx_frames",
        "net.board.tx_bytes",
        "net.board.irqs",
        // The board's idle-scheduler counters land in the same registry,
        // so `engines_agree_byte_for_byte`'s snapshot comparison covers
        // them too.
        "board.idle_cycles",
        "board.skip_batches",
    ] {
        assert!(
            snapshot.contains(name),
            "snapshot should carry {name}:\n{snapshot}"
        );
    }
    // And the world's own stack counters sit alongside them.
    assert!(snapshot.contains("net.tcp"), "world counters present");
}
