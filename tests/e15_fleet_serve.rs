//! E15: fleet-scale serving. Four boards — each a full Rabbit 2000
//! running the compiled-C record layer with three NIC handles — sit in
//! one deterministic `netsim` world behind a simulated TCP load
//! balancer, and together serve twenty-four concurrent secure and
//! plaintext sessions. The fleet scheduler owns world time; the boards
//! advance in epoch lockstep; every observable is byte-identical
//! across execution engines.

use rabbit::Engine;
use rmc2000::{fleet_serve, FleetRun, FleetSpec, GuestClient};

const PSK: &[u8] = b"rmc2000 shared secret";
const BOARDS: usize = 4;

/// The E15 workload: 8 secure + 16 plaintext sessions — twice the
/// fleet's 12 simultaneous handles, so the balancer's capacity
/// hold-off is always in play. Plaintext payloads are ASCII so the
/// guest's first-byte sniff never mistakes them for a ClientHello.
fn mixed_workload() -> Vec<GuestClient> {
    let mut clients = Vec::new();
    for i in 0..8u8 {
        let messages: Vec<Vec<u8>> = (0..2u8)
            .map(|j| {
                let len = 20 + 9 * usize::from(i) + 4 * usize::from(j);
                (0..len).map(|k| (i ^ j).wrapping_add(k as u8)).collect()
            })
            .collect();
        clients.push(GuestClient::Secure {
            messages,
            psk: PSK.to_vec(),
            tamper: rmc2000::Tamper::None,
        });
    }
    for i in 0..16u8 {
        clients.push(GuestClient::Plain {
            messages: vec![
                format!("fleet session {i}").into_bytes(),
                format!("second helping for session {i}").into_bytes(),
            ],
        });
    }
    clients
}

fn expected_echo(client: &GuestClient) -> Vec<u8> {
    match client {
        GuestClient::Secure { messages, .. } | GuestClient::Plain { messages } => {
            messages.concat()
        }
        _ => unreachable!("E15 workload is secure + plain only"),
    }
}

fn run(engine: Engine) -> FleetRun {
    let mut spec = FleetSpec::new(engine, BOARDS, PSK, mixed_workload());
    spec.probe_gap_us = Some(900);
    fleet_serve(&spec)
}

/// The headline E15 claim: four boards behind the balancer serve all
/// twenty-four mixed sessions to completion, with every handle freed
/// and every plaintext byte echoed.
#[test]
fn four_boards_serve_twenty_four_mixed_sessions() {
    let clients = mixed_workload();
    let run = run(Engine::BlockCache);

    assert_eq!(run.outcomes.len(), 24);
    for (i, (out, client)) in run.outcomes.iter().zip(&clients).enumerate() {
        assert!(out.established, "client {i} establishes");
        assert_eq!(out.error, None, "client {i} clean");
        assert_eq!(out.echoed, expected_echo(client), "client {i} echo");
    }

    assert_eq!(run.boards.len(), BOARDS);
    let accepts: u16 = run.boards.iter().map(|b| b.accepts).sum();
    assert_eq!(accepts, 24, "every session landed on some board");
    for b in &run.boards {
        assert!(b.accepts > 0, "{} sat idle", b.label);
        assert_eq!(b.open, 0, "{} freed all handles", b.label);
    }

    // Exactly one secure handshake per secure session, fleet-wide.
    let handshakes: u32 = run
        .boards
        .iter()
        .flat_map(|b| &b.conns)
        .map(|c| u32::from(c.handshakes))
        .sum();
    assert_eq!(handshakes, 8);

    // The balancer held every board at its three-handle capacity at
    // some point (24 eager clients over 12 handles) and never marked
    // one dead or failed a connect.
    for (i, be) in run.backends.iter().enumerate() {
        assert_eq!(be.peak_inflight, 3, "backend {i} saturated");
        assert_eq!(be.inflight, 0, "backend {i} drained");
        assert_eq!(be.failures, 0, "backend {i} healthy");
        assert!(!be.dead, "backend {i} alive");
    }
    let served: u64 = run.backends.iter().map(|b| b.served).sum();
    assert_eq!(served, 24);
}

/// Telemetry is namespaced per board: each board publishes its own
/// `board<i>.`-prefixed NIC and guest counters into the one registry.
#[test]
fn telemetry_is_namespaced_per_board() {
    let run = run(Engine::BlockCache);
    for i in 0..BOARDS {
        assert!(
            run.snapshot.contains(&format!("board{i}.net.board.conn.accepts")),
            "board{i} NIC counters missing from snapshot"
        );
        assert!(
            run.snapshot.contains(&format!("board{i}.issl.guest.handshakes")),
            "board{i} guest counters missing from snapshot"
        );
    }
    assert!(run.snapshot.contains("lb.accepts"), "balancer books present");
}

/// The fleet determinism bar, engine edition: the full 4-board × 24
/// session run — client transcripts, per-board cycle and instruction
/// counts, console bytes, balancer books, telemetry, virtual time — is
/// byte-identical between the interpreter and the block-cache engine.
#[test]
fn engines_agree_on_the_whole_fleet() {
    let a = run(Engine::Interpreter);
    let b = run(Engine::BlockCache);

    assert_eq!(a.outcomes, b.outcomes, "client transcripts agree");
    assert_eq!(a.epochs, b.epochs, "epoch counts agree");
    assert_eq!(a.virtual_us, b.virtual_us, "virtual time agrees");
    assert_eq!(a.echoed_bytes, b.echoed_bytes);
    assert_eq!(a.backends, b.backends, "balancer books agree");
    assert_eq!(a.snapshot, b.snapshot, "telemetry snapshots agree");
    for (x, y) in a.boards.iter().zip(&b.boards) {
        assert_eq!(x.cycles, y.cycles, "{} cycles agree", x.label);
        assert_eq!(x.instructions, y.instructions, "{} instructions agree", x.label);
        assert_eq!(x.accepts, y.accepts);
        assert_eq!(x.conns, y.conns, "{} guest counters agree", x.label);
        assert_eq!(x.serial_tx, y.serial_tx, "{} console agrees", x.label);
    }
}
