//! Mass-concurrency smoke run for CI: 100 concurrent sessions through
//! the readiness-driven event-loop server, printing throughput and
//! handshake-latency numbers (run with `--nocapture` to see them).
//!
//! The full 1,000-session run lives in `full_stack.rs`; this smaller
//! sweep keeps the CI job fast while still exercising the same
//! serving path at three orders of concurrency.

use issl::serve::run_load;
use issl::LoadSpec;

#[test]
fn hundred_session_smoke() {
    for n in [10usize, 100] {
        let report = run_load(&LoadSpec::concurrency(n));
        assert_eq!(report.completed, n, "all {n} sessions complete");
        assert_eq!(report.failed, 0, "no failures at N={n}");
        println!(
            "N={n:4}  {:8.1} sessions/sec  handshake p50={}us p99={}us  ({} us virtual)",
            report.sessions_per_sec(),
            report.handshake_percentile_us(50.0),
            report.handshake_percentile_us(99.0),
            report.elapsed_us,
        );
    }
}

/// The smoke run is bit-for-bit reproducible: identical specs give
/// identical virtual-time latency vectors.
#[test]
fn hundred_session_determinism() {
    let spec = LoadSpec::concurrency(100);
    let a = run_load(&spec);
    let b = run_load(&spec);
    assert_eq!(a.completed, 100);
    assert_eq!(a.handshake_us, b.handshake_us);
    assert_eq!(a.elapsed_us, b.elapsed_us);
}
