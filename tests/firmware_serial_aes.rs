//! Capstone firmware test: the whole embedded stack in one image.
//!
//! Custom firmware on the simulated RMC2000 polls serial port A for a
//! 16-byte key and a 16-byte block, runs the hand-optimized AES routines
//! (linked from the `aes-rabbit` assembly source), and transmits the
//! ciphertext back over the serial port — a miniature of the paper's
//! "crypto coprocessor" idea, executed instruction by instruction on the
//! board model and checked against the FIPS-pinned reference cipher.

use aes_rabbit::aes128_asm_source;
use rabbit::assemble;
use rmc2000::{Board, RunOutcome};

/// The serial front-end, grafted onto the AES image at a free code
/// address. `Akey` and `Astate` are adjacent in the data section, so one
/// 32-byte read fills both; `encrypt` works on `Astate` in place.
const FIRMWARE_HARNESS: &str = "
        org 0x7000
fw:     ld sp, 0xDFF0
        ld hl, Akey
        ld b, 32
fwrd:   ioi ld a, (0xC3)    ; SASR: wait for receive-data-ready
        and 0x80
        jr z, fwrd
        ioi ld a, (0xC0)    ; SADR: take the byte
        ld (hl), a
        inc hl
        djnz fwrd
        call expand
        call encrypt
        ld hl, Astate
        ld b, 16
fwtx:   ld a, (hl)
        ioi ld (0xC0), a    ; transmit ciphertext
        inc hl
        djnz fwtx
        halt
";

fn boot_firmware() -> Board {
    let mut src = aes128_asm_source(1);
    src.push_str(FIRMWARE_HARNESS);
    let image = assemble(&src).expect("firmware assembles");
    let mut board = Board::new();
    board.load(&image);
    board.set_pc(image.symbol("fw").expect("fw entry"));
    board
}

#[test]
fn board_encrypts_serial_input_to_serial_output() {
    let mut board = boot_firmware();

    // FIPS-197 C.1: key 00..0f, plaintext 00 11 22 .. ff.
    let key: [u8; 16] = core::array::from_fn(|i| i as u8);
    let plain: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
    for b in key.iter().chain(&plain) {
        board.serial_mut().inject(*b);
    }

    assert_eq!(board.run(50_000_000), RunOutcome::Halted);
    assert_eq!(
        board.serial().transmitted(),
        &[
            0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
            0xC5, 0x5A
        ],
        "ciphertext on the wire matches FIPS-197 appendix C.1"
    );
}

#[test]
fn firmware_blocks_until_enough_input_arrives() {
    let mut board = boot_firmware();
    // Only half the input: the firmware must keep polling, not halt.
    for b in 0..16u8 {
        board.serial_mut().inject(b);
    }
    assert_eq!(board.run(2_000_000), RunOutcome::BudgetExhausted);
    assert!(board.serial().transmitted().is_empty());

    // Deliver the rest; it finishes.
    let plain: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
    for b in plain {
        board.serial_mut().inject(b);
    }
    assert_eq!(board.run(50_000_000), RunOutcome::Halted);
    assert_eq!(board.serial().transmitted().len(), 16);
}

#[test]
fn firmware_agrees_with_host_cipher_on_random_inputs() {
    let mut prng = crypto::Prng::new(0xF1F1);
    for trial in 0..3 {
        let mut board = boot_firmware();
        let mut key = [0u8; 16];
        let mut plain = [0u8; 16];
        prng.fill(&mut key);
        prng.fill(&mut plain);
        for b in key.iter().chain(&plain) {
            board.serial_mut().inject(*b);
        }
        assert_eq!(board.run(50_000_000), RunOutcome::Halted, "trial {trial}");

        let reference = crypto::Rijndael::aes(&key).expect("key");
        let mut expect = plain;
        reference.encrypt_block(&mut expect);
        assert_eq!(board.serial().transmitted(), expect, "trial {trial}");
    }
}
